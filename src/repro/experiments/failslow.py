"""Fail-slow gray failures and peer-comparison detection: EXT-12.

EXT-8 prices *fail-stop* hardware faults into the srvr1/N1/N2
comparison; this experiment asks the harder warehouse question the
paper's low-cost ensembles raise (section 3.6 and Hamilton's
modular-datacenter argument): what happens when one node does not die
but gets *slow* -- and how much of the damage can service-level
detection undo at zero hardware cost?

Three scenarios per tier, identical seed and workload:

- **healthy** -- no drift, the tier's clean baseline;
- **undetected** -- one node serving every resource dimension (CPU,
  NIC, remote memory, flash/disk) at 10x its healthy service time,
  behind a health-blind round-robin dispatcher with a static
  worst-case timeout.  Every health check still passes -- the node
  answers -- so roughly 1/N of all requests eat the 10x path and the
  cluster p99 inflates severalfold;
- **detected** -- the same degraded cluster with
  :class:`~repro.faults.failslow.PeerComparisonDetector` enabled:
  peer-comparison scoring over per-server latency histograms, outlier
  ejection with exponential-backoff quarantine and probation probes,
  and percentile-adaptive per-attempt timeouts in place of the static
  guess.

Every run is traced (:mod:`repro.obs`), so the recovery claim comes
with a bill: per-tier critical-path attribution tables show which span
kinds the undetected tail spends its milliseconds on and how many of
those milliseconds detection takes back.  A least-outstanding
comparison row quantifies how much of the problem queue-depth dispatch
hides on its own (it is an implicit -- and weaker -- gray-failure
mitigation), and a drift-catalog section exercises each drift shape
(linear wear, step, intermittent stutter, thermal sawtooth) against
the detector.

Determinism: drift and detection consume zero RNG state, tracing is
hash-sampled, and the grid fans across workers with ``pmap`` -- the
rendered result and its payload digest are byte-identical for a fixed
seed, serial or ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.balancer import ClusterSimulator, Dispatch, RetryPolicy
from repro.experiments.availability import _TRACE_LENGTH, _WORKLOAD, _setups
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.faults.failslow import (
    AdaptiveTimeoutPolicy,
    DetectionPolicy,
    FailSlowInjection,
    FailSlowPlan,
    LinearDrift,
    SawtoothDrift,
    SlowResource,
    StepDrift,
    StutterDrift,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.obs.critical_path import COMPONENT_ORDER, attribute_critical_path
from repro.obs.export import trace_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.perf.parallel import intra_jobs, merge_telemetry, pmap
from repro.workloads.suite import make_workload

#: The headline gray failure: one node 10x slower on every dimension.
SLOW_FACTOR = 10.0
SLOW_SERVER = 0

#: Static worst-case per-attempt timeout the adaptive policy replaces.
STATIC_RETRY = RetryPolicy(
    timeout_ms=1000.0, max_retries=3, backoff_base_ms=20.0
)

#: Detection knobs for every ``detected`` run (module-level so tests and
#: the CI smoke assert against exactly what the experiment uses).
DETECTION = DetectionPolicy(adaptive_timeout=AdaptiveTimeoutPolicy())

#: Drift-catalog shapes, each degrading every resource dimension of the
#: slow node.  Onsets sit inside the measured window so the catalog also
#: reports time-to-ejection from drift onset.
DRIFT_CATALOG: Dict[str, object] = {
    "step": StepDrift(SLOW_FACTOR, at_ms=2000.0),
    "linear": LinearDrift(peak=SLOW_FACTOR, onset_ms=2000.0, ramp_ms=6000.0),
    "stutter": StutterDrift(
        factor=SLOW_FACTOR, period_ms=2000.0, burst_ms=800.0,
        probability=0.6, seed=5, onset_ms=2000.0,
    ),
    "sawtooth": SawtoothDrift(peak=SLOW_FACTOR, period_ms=6000.0,
                              onset_ms=2000.0),
}


def slow_node_plan(
    factor: float = SLOW_FACTOR, server: int = SLOW_SERVER
) -> FailSlowPlan:
    """One node stepping to ``factor`` x on every resource dimension."""
    return FailSlowPlan(
        tuple(
            FailSlowInjection(server, resource, StepDrift(factor))
            for resource in SlowResource
        )
    )


def catalog_plan(kind: str, server: int = SLOW_SERVER) -> FailSlowPlan:
    """One node degraded by the named drift-catalog shape."""
    drift = DRIFT_CATALOG[kind]
    return FailSlowPlan(
        tuple(
            FailSlowInjection(server, resource, drift)
            for resource in SlowResource
        )
    )


@dataclass(frozen=True)
class FailSlowRunConfig:
    """One cluster run of the EXT-12 grid (picklable for ``pmap``)."""

    design: str
    #: "healthy" | "undetected" | "detected"
    scenario: str
    #: Drift-catalog shape, or None for the headline 10x step plan.
    drift_kind: Optional[str] = None
    dispatch: str = Dispatch.ROUND_ROBIN.value
    servers: int = 6
    clients_per_server: int = 6
    warmup: int = 200
    measure: int = 1800
    seed: int = 1
    sample_rate: float = 1.0
    trace_seed: int = 17
    traced: bool = True


def run_failslow_config(config: FailSlowRunConfig) -> dict:
    """Run one scenario; module-level so ``pmap`` can fan the grid out."""
    setups = {setup.name: setup for setup in _setups()}
    try:
        setup = setups[config.design]
    except KeyError as exc:
        raise KeyError(
            f"unknown design {config.design!r}; known: {sorted(setups)}"
        ) from exc

    workload = make_workload(_WORKLOAD)
    remote = None
    if setup.uses_remote_memory:
        remote = make_remote_memory_model(
            _WORKLOAD, local_fraction=0.25, trace_length=_TRACE_LENGTH
        )
    factory = None
    if setup.uses_flash:
        disk_config = disk_configuration("remote-laptop+flash")
        factory = lambda: disk_config.make_disk_model(_WORKLOAD)  # noqa: E731

    plan = None
    if config.scenario != "healthy":
        plan = (
            slow_node_plan()
            if config.drift_kind is None
            else catalog_plan(config.drift_kind)
        )
    detection = DETECTION if config.scenario == "detected" else None

    tracer = (
        Tracer(sample_rate=config.sample_rate, seed=config.trace_seed)
        if config.traced
        else None
    )
    metrics = MetricsRegistry()
    result = ClusterSimulator(
        platform=setup.design.platform,
        workload=workload,
        servers=config.servers,
        clients_per_server=config.clients_per_server,
        dispatch=Dispatch(config.dispatch),
        seed=config.seed,
        warmup_requests=config.warmup,
        measure_requests=config.measure,
        disk_model_factory=factory,
        remote_memory=remote,
        retry=STATIC_RETRY,
        failslow=plan,
        failslow_detection=detection,
        tracer=tracer,
        metrics=metrics,
    ).run()
    return {
        "config": config,
        "result": result,
        "tracer": tracer,
        "metrics": metrics,
    }


def _p99_components(payload: dict) -> Tuple[float, Dict[str, float]]:
    """(p99 latency, exclusive component ms of the p99 tail set)."""
    tracer = payload["tracer"]
    if tracer is None:
        return payload["result"].p99_ms, {}
    attributions = attribute_critical_path(
        tracer.completed_traces(), percentiles=(0.99,)
    )
    if not attributions:
        return payload["result"].p99_ms, {}
    attribution = attributions[0]
    return attribution.latency_ms, dict(attribution.components)


def _fmt_ms(value: float) -> str:
    return f"{value:.1f} ms"


def run(
    servers: int = 6,
    clients_per_server: int = 6,
    warmup: int = 200,
    measure: int = 1800,
    seed: int = 1,
    sample_rate: float = 1.0,
    trace_seed: int = 17,
    catalog_measure: Optional[int] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Rerun srvr1/N1/N2 with one 10x-slow node, without and with detection."""
    catalog_measure = catalog_measure or max(measure // 2, 400)
    tiers = [setup.name for setup in _setups()]
    common = dict(
        servers=servers,
        clients_per_server=clients_per_server,
        warmup=warmup,
        measure=measure,
        seed=seed,
        sample_rate=sample_rate,
        trace_seed=trace_seed,
    )
    configs: List[FailSlowRunConfig] = [
        FailSlowRunConfig(design=tier, scenario=scenario, **common)
        for tier in tiers
        for scenario in ("healthy", "undetected", "detected")
    ]
    # Implicit-mitigation comparison: the same slow node behind
    # least-outstanding dispatch (queue depth is a weak health signal).
    lo_index = len(configs)
    configs.append(
        FailSlowRunConfig(
            design=tiers[0], scenario="undetected",
            dispatch=Dispatch.LEAST_OUTSTANDING.value, **common,
        )
    )
    # Drift catalog: every shape against the detector, on the base tier.
    catalog_kinds = sorted(DRIFT_CATALOG)
    catalog_start = len(configs)
    configs.extend(
        FailSlowRunConfig(
            design=tiers[0], scenario="detected", drift_kind=kind,
            **{**common, "measure": catalog_measure},
        )
        for kind in catalog_kinds
    )

    payloads = pmap(
        run_failslow_config,
        configs,
        jobs=intra_jobs() if jobs is None else jobs,
    )
    by_key = {
        (p["config"].design, p["config"].scenario, p["config"].drift_kind,
         p["config"].dispatch): p
        for p in payloads
    }

    rr = Dispatch.ROUND_ROBIN.value
    data: Dict[str, object] = {}
    sections: Dict[str, str] = {}

    # -- headline: one 10x-slow node per tier --------------------------
    tier_rows = []
    recovery_rows = []
    for tier in tiers:
        healthy = by_key[(tier, "healthy", None, rr)]
        undet = by_key[(tier, "undetected", None, rr)]
        det = by_key[(tier, "detected", None, rr)]
        h_p99, h_parts = _p99_components(healthy)
        u_p99, u_parts = _p99_components(undet)
        d_p99, d_parts = _p99_components(det)
        inflation = u_p99 / h_p99 if h_p99 > 0 else 0.0
        gap = u_p99 - h_p99
        recovered = (u_p99 - d_p99) / gap if gap > 0 else 0.0
        fs = det["result"].failslow_report
        tier_rows.append([
            tier,
            _fmt_ms(h_p99),
            _fmt_ms(u_p99),
            f"{inflation:.2f}x",
            _fmt_ms(d_p99),
            percent(recovered),
            str(fs.ejections),
            str(fs.requarantines),
            str(fs.probes),
            _fmt_ms(fs.ejected_ms.get(SLOW_SERVER, 0.0)),
        ])
        # Recovered time by span kind: where the undetected p99 tail
        # spent its exclusive milliseconds, and how many of them the
        # detector took back.
        for kind in COMPONENT_ORDER:
            u_ms = u_parts.get(kind, 0.0)
            d_ms = d_parts.get(kind, 0.0)
            if abs(u_ms) < 0.05 and abs(d_ms) < 0.05:
                continue
            recovery_rows.append([
                tier, kind, _fmt_ms(u_parts.get(kind, 0.0)),
                _fmt_ms(d_ms), _fmt_ms(u_ms - d_ms),
            ])
        data[tier] = {
            "healthy_p99_ms": h_p99,
            "undetected_p99_ms": u_p99,
            "detected_p99_ms": d_p99,
            "inflation": inflation,
            "recovered_fraction": recovered,
            "ejections": fs.ejections,
            "readmissions": fs.readmissions,
            "requarantines": fs.requarantines,
            "probes": fs.probes,
            "quarantine_bypasses": fs.quarantine_bypasses,
            "slow_server_ejected_ms": fs.ejected_ms.get(SLOW_SERVER, 0.0),
            "last_adaptive_timeout_ms": fs.last_adaptive_timeout_ms,
            "undetected_p99_components_ms": u_parts,
            "detected_p99_components_ms": d_parts,
            "trace_digests": {
                scenario: trace_digest(
                    [(f"{tier}/{scenario}", payload["tracer"].traces)]
                )
                for scenario, payload in (
                    ("healthy", healthy),
                    ("undetected", undet),
                    ("detected", det),
                )
                if payload["tracer"] is not None
            },
        }

    sections["one 10x-slow node per tier (round-robin dispatch)"] = (
        format_table(
            [
                "Tier", "healthy p99", "undetected p99", "inflation",
                "detected p99", "recovered", "ejections", "relapses",
                "probes", "slow node out-of-rotation",
            ],
            tier_rows,
        )
    )
    if recovery_rows:
        sections["p99 critical path: recovered time by span kind"] = (
            format_table(
                [
                    "Tier", "component", "undetected ms", "detected ms",
                    "recovered ms",
                ],
                recovery_rows,
            )
        )

    # -- implicit mitigation: least-outstanding dispatch ---------------
    lo = payloads[lo_index]
    lo_p99, _ = _p99_components(lo)
    base = data[tiers[0]]
    sections["dispatch policy as implicit mitigation (srvr1)"] = format_table(
        ["Scenario", "p99", "vs healthy"],
        [
            ["healthy (round-robin)", _fmt_ms(base["healthy_p99_ms"]), "1.00x"],
            [
                "slow node, round-robin, no detection",
                _fmt_ms(base["undetected_p99_ms"]),
                f"{base['inflation']:.2f}x",
            ],
            [
                "slow node, least-outstanding, no detection",
                _fmt_ms(lo_p99),
                f"{lo_p99 / base['healthy_p99_ms']:.2f}x",
            ],
            [
                "slow node, round-robin + detection",
                _fmt_ms(base["detected_p99_ms"]),
                f"{base['detected_p99_ms'] / base['healthy_p99_ms']:.2f}x",
            ],
        ],
    )
    data["least_outstanding_undetected_p99_ms"] = lo_p99

    # -- drift catalog --------------------------------------------------
    catalog_rows = []
    catalog_data: Dict[str, object] = {}
    for offset, kind in enumerate(catalog_kinds):
        payload = payloads[catalog_start + offset]
        fs = payload["result"].failslow_report
        drift = DRIFT_CATALOG[kind]
        first_ejection = next(
            (t.time_ms for t in fs.transitions if t.reason == "ejected"),
            None,
        )
        onset = getattr(drift, "onset_ms", getattr(drift, "at_ms", 0.0))
        detect_ms = (
            first_ejection - onset if first_ejection is not None else None
        )
        catalog_rows.append([
            kind,
            type(drift).__name__,
            _fmt_ms(payload["result"].p99_ms),
            str(fs.ejections),
            str(fs.requarantines),
            _fmt_ms(detect_ms) if detect_ms is not None else "not ejected",
        ])
        catalog_data[kind] = {
            "p99_ms": payload["result"].p99_ms,
            "ejections": fs.ejections,
            "requarantines": fs.requarantines,
            "readmissions": fs.readmissions,
            "onset_to_ejection_ms": detect_ms,
        }
    sections["drift catalog vs the detector (srvr1, detection on)"] = (
        format_table(
            [
                "Drift", "shape", "p99", "ejections", "relapses",
                "onset-to-ejection",
            ],
            catalog_rows,
        )
    )
    data["drift_catalog"] = catalog_data

    combined = merge_telemetry(p["metrics"] for p in payloads)
    if combined is not None:
        data["combined"] = {
            "timeouts": combined.value("cluster.timeouts"),
            "retries": combined.value("cluster.retries"),
            "ejections": combined.value("cluster.failslow.ejections"),
            "readmissions": combined.value("cluster.failslow.readmissions"),
            "probes": combined.value("cluster.failslow.probes"),
        }

    base_name = tiers[0]
    sections["conclusion"] = (
        f"a single node serving at {SLOW_FACTOR:.0f}x -- while passing "
        f"every fail-stop health check -- inflates {base_name}'s cluster "
        f"p99 by {data[base_name]['inflation']:.2f}x behind a "
        "health-blind dispatcher, because ~1/N of requests eat the slow "
        "path.  Peer-comparison scoring spots the outlier against the "
        "fleet median, ejects it, and keeps it on probation probes, "
        f"recovering {percent(data[base_name]['recovered_fraction'])} of "
        "the inflation at zero hardware cost; the attribution table "
        "shows the recovered milliseconds coming off the slow node's "
        "cpu/disk/net spans and the timeout-retry waits it caused.  "
        "Least-outstanding dispatch alone hides only part of the "
        "problem (queue depth is an indirect, lagging health signal).  "
        "This is Hamilton's modular-datacenter argument in miniature: "
        "commodity fleets keep their cost advantage only if the service "
        "layer -- not the hardware -- owns gray-failure detection and "
        "recovery."
    )
    data["workload"] = _WORKLOAD
    data["slow_factor"] = SLOW_FACTOR
    data["retry_timeout_ms"] = STATIC_RETRY.timeout_ms
    data["sample_rate"] = sample_rate
    data["trace_seed"] = trace_seed
    return ExperimentResult(
        experiment_id="EXT-12",
        title="Fail-slow gray failures: peer-comparison detection",
        paper_reference="section 3.6 ensembles, one fail-slow node",
        sections=sections,
        data=data,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI entry: ``python -m repro.experiments.failslow --smoke``.

    Smoke mode runs the seeded mini grid (base tier only, untraced) and
    asserts the two EXT-12 acceptance properties: the undetected slow
    node inflates p99 at least 2x in the shortened run, and detection
    closes at least half of the gap.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro-failslow")
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunk seeded run with pass/fail acceptance checks",
    )
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    if not args.smoke:
        result = run(
            measure=args.measure or 1800,
            jobs=args.jobs if args.jobs > 0 else None,
        )
        print(result.render())
        return 0

    measure = args.measure or 900
    tier = _setups()[0].name
    runs = {
        scenario: run_failslow_config(
            FailSlowRunConfig(
                design=tier, scenario=scenario, measure=measure,
                traced=False,
            )
        )["result"]
        for scenario in ("healthy", "undetected", "detected")
    }
    h, u, d = (runs[s].p99_ms for s in ("healthy", "undetected", "detected"))
    gap = u - h
    closed = (u - d) / gap if gap > 0 else 0.0
    fs = runs["detected"].failslow_report
    print(
        f"failslow smoke [{tier}, measure={measure}]: healthy p99 "
        f"{h:.1f} ms, undetected {u:.1f} ms ({u / h:.2f}x), detected "
        f"{d:.1f} ms; gap closed {closed:.0%}; ejections={fs.ejections} "
        f"relapses={fs.requarantines} probes={fs.probes}"
    )
    failures = []
    if u < 2.0 * h:
        failures.append(
            f"undetected inflation {u / h:.2f}x < 2x acceptance floor"
        )
    if closed < 0.5:
        failures.append(f"detection closed {closed:.0%} < 50% of p99 gap")
    if fs.ejections < 1:
        failures.append("detector never ejected the slow node")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: detection closed >=50% of the p99 gap")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
