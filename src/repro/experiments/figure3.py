"""Figure 3: new proposed cooling architectures.

The paper's figure is a mechanical drawing; the quantitative claims are:

- dual-entry enclosures with directed airflow improve cooling efficiency
  by ~50% (we interpret the combined claim as ~2x cooling efficiency) and
  allow 320 systems per rack (40 blades of 75 W per 5U enclosure);
- aggregated microblade cooling reaches ~4x efficiency and 1250 systems
  per rack;
- heat pipes transfer heat at 3x the conductivity of copper.

This experiment regenerates those numbers from the thermal models.
"""

from __future__ import annotations

from repro.cooling.enclosure import (
    AGGREGATED_MICROBLADE,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
)
from repro.cooling.rack import pack_rack
from repro.cooling.thermal import COPPER_CONDUCTIVITY, HeatPipe
from repro.costmodel.catalog import server_bill
from repro.experiments.reporting import ExperimentResult, format_table


def run() -> ExperimentResult:
    """Regenerate the cooling-architecture comparison."""
    designs = [CONVENTIONAL_ENCLOSURE, DUAL_ENTRY_ENCLOSURE, AGGREGATED_MICROBLADE]
    emb1_power = server_bill("emb1").power_w
    mobl_power = server_bill("mobl").power_w

    rows = []
    data = {}
    for design in designs:
        efficiency = design.cooling_efficiency_vs(CONVENTIONAL_ENCLOSURE)
        fan_factor = design.fan_power_factor(CONVENTIONAL_ENCLOSURE)
        server_power = mobl_power if design is DUAL_ENTRY_ENCLOSURE else emb1_power
        packing = pack_rack(design, server_power)
        rows.append(
            (
                design.name,
                f"{efficiency:.2f}x",
                f"{fan_factor:.2f}",
                design.systems_per_rack,
                f"{packing.rack_power_kw:.1f} kW",
            )
        )
        data[design.name] = {
            "cooling_efficiency": efficiency,
            "fan_power_factor": fan_factor,
            "systems_per_rack": design.systems_per_rack,
            "rack_power_kw": packing.rack_power_kw,
        }

    table = format_table(
        ["Enclosure", "Cooling eff.", "Fan power x", "Systems/rack", "Rack power"],
        rows,
    )

    pipe = HeatPipe(length_m=0.09, cross_section_m2=5.0e-4)
    pipe_note = (
        f"planar heat pipe conductivity: {pipe.conductivity_w_mk:.0f} W/mK "
        f"({pipe.conductivity_w_mk / COPPER_CONDUCTIVITY:.1f}x copper); "
        f"conduction resistance {pipe.conduction_resistance_k_w:.2f} K/W vs "
        f"{CONVENTIONAL_ENCLOSURE.conduction_k_w:.2f} K/W conventional"
    )

    return ExperimentResult(
        experiment_id="E7",
        title="New proposed cooling architectures",
        paper_reference="Figure 3",
        sections={"enclosures": table, "heat pipes": pipe_note},
        data=data,
    )
