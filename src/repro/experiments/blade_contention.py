"""Memory-blade link contention (the paper's acknowledged blind spot).

Section 3.4: "our trace-based methodology cannot account for the
second-order impact of PCIe link contention or consecutive accesses to
the missing page".  With the remote-memory traffic modelled as an
explicit shared blade-controller resource inside the cluster simulator
(:mod:`repro.memsim.remote_memory`), we can measure that impact directly:
sweep the number of servers sharing one blade and report the blade-link
utilization and the per-server throughput penalty relative to an
uncontended blade.

Run on emb1 + websearch (the heaviest remote-memory traffic in the
suite) at 25% and 12.5% local memory.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.balancer import ClusterSimulator
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.memsim.remote_memory import make_remote_memory_model
from repro.platforms.catalog import platform
from repro.workloads.suite import make_workload

SERVER_COUNTS = (2, 8, 16, 32)
LOCAL_FRACTIONS = (0.25, 0.125)
_CLIENTS_PER_SERVER = 8
_TRACE_LENGTH = 200_000


def run() -> ExperimentResult:
    """Sweep servers-per-blade and measure the contention penalty."""
    plat = platform("emb1")
    workload = make_workload("websearch")
    sections = {}
    data: Dict[float, Dict[int, Dict[str, float]]] = {}

    for fraction in LOCAL_FRACTIONS:
        remote = make_remote_memory_model(
            "websearch", local_fraction=fraction, trace_length=_TRACE_LENGTH
        )
        per_request_ms = remote.link_time_ms(workload.mean_demand())
        rows = []
        data[fraction] = {}
        for servers in SERVER_COUNTS:
            contended = ClusterSimulator(
                plat, workload, servers=servers,
                clients_per_server=_CLIENTS_PER_SERVER,
                remote_memory=remote,
                warmup_requests=200, measure_requests=1800,
            ).run()
            # Utilization of the single blade link at this throughput.
            link_utilization = (
                contended.throughput_rps * per_request_ms / 1000.0
            )
            baseline = ClusterSimulator(
                plat, workload, servers=servers,
                clients_per_server=_CLIENTS_PER_SERVER,
                warmup_requests=200, measure_requests=1800,
            ).run()
            penalty = 1.0 - contended.per_server_rps / baseline.per_server_rps
            data[fraction][servers] = {
                "link_utilization": link_utilization,
                "throughput_penalty": penalty,
                "p95_ms": contended.qos_percentile_ms,
            }
            rows.append(
                (
                    servers,
                    percent(link_utilization),
                    f"{penalty * 100:+.1f}%",
                    f"{contended.qos_percentile_ms:.0f} ms",
                )
            )
        sections[f"{fraction:.1%} local memory"] = format_table(
            ["Servers/blade", "link util.", "throughput penalty", "p95"], rows
        )

    note = (
        "at enclosure scale (<=32 servers per blade) the shared link stays "
        "far from saturation and the throughput penalty is within "
        "simulation noise -- the paper's trace-level simplification is "
        "sound for its design points."
    )
    return ExperimentResult(
        experiment_id="EXT-7",
        title="Memory-blade PCIe link contention",
        paper_reference="section 3.4 (methodology caveat)",
        sections={**sections, "conclusion": note},
        data=data,
    )
