"""Table 2: the six systems considered (features, watts, infrastructure $).

Paper totals for validation (Inf-$ includes the per-server switch share):
srvr1 340 W / $3,294; srvr2 215 W / $1,689; desk 135 W / $849;
mobl 78 W / $989; emb1 52 W / $499; emb2 35 W / $379.
"""

from __future__ import annotations

from repro.costmodel.catalog import server_bill, system_names
from repro.costmodel.rack import STANDARD_RACK
from repro.experiments.reporting import ExperimentResult, dollars, format_table
from repro.platforms.catalog import platform

#: The paper's "Similar to" column.
SIMILAR_TO = {
    "srvr1": "Xeon MP, Opteron MP",
    "srvr2": "Xeon, Opteron",
    "desk": "Core 2, Athlon 64",
    "mobl": "Core 2 Mobile, Turion",
    "emb1": "PA Semi, Emb. Athlon 64",
    "emb2": "AMD Geode, VIA Eden-N",
}


def run() -> ExperimentResult:
    """Regenerate Table 2 from the platform and cost catalogs."""
    rows = []
    data = {}
    for name in system_names():
        plat = platform(name)
        bill = server_bill(name)
        inf_usd = bill.hardware_cost_usd + STANDARD_RACK.switch_cost_per_server_usd
        rows.append(
            (
                name,
                SIMILAR_TO[name],
                plat.cpu.summary(),
                f"{bill.power_w:.0f}",
                dollars(inf_usd),
            )
        )
        data[name] = {
            "watt": bill.power_w,
            "inf_usd": inf_usd,
            "cpu": plat.cpu.summary(),
            "memory_gb": plat.memory.capacity_gb,
            "memory_technology": str(plat.memory.technology),
            "disk": plat.disk.name,
            "nic": plat.nic.name,
        }

    table = format_table(
        ["System", "Similar to", "System features", "Watt", "Inf-$"], rows
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Summary of systems considered",
        paper_reference="Table 2",
        sections={"systems": table},
        data=data,
    )
