"""Scale-out limits and cluster-aggregation validation (section 4).

Two section 4 caveats, quantified:

1. *Amdahl's-law limits*: replacing srvr1 with emb1 needs ~6x more
   servers per unit of throughput; with partitioning overheads the true
   multiplier is higher, eroding (but, at the paper's workload
   characteristics, not erasing) the Perf/TCO-$ advantage.
2. *Cluster-aggregation assumption*: the paper approximates cluster
   performance as the sum of single-server results.  A multi-server
   cluster simulation with a load balancer checks how close that is,
   and how dispatch policy affects the cluster-level tail.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.balancer import ClusterSimulator, Dispatch
from repro.cluster.scaleout import ScaleOutModel
from repro.core.designs import baseline_design
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.platforms.catalog import platform
from repro.simulator.performance import measure_performance
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import make_workload

#: Per-workload partitioning characteristics (the paper names search as
#: the workload with partitioning overheads; mapreduce shards cleanly).
SCALEOUT_MODELS: Dict[str, ScaleOutModel] = {
    "websearch": ScaleOutModel(
        serial_fraction=0.001, coordination_overhead=0.008,
        datastructure_inflation=0.007,
    ),
    "mapred-wc": ScaleOutModel(
        serial_fraction=0.005, coordination_overhead=0.005,
        datastructure_inflation=0.005,
    ),
}


def run(config: SimConfig = SimConfig()) -> ExperimentResult:
    """Quantify both section 4 caveats."""
    sections = {}
    data: Dict[str, Dict] = {"equivalence": {}, "cluster": {}}

    # 1. Equivalence ratios: emb1 servers per srvr1 server, with and
    #    without partitioning overheads, and the TCO impact.
    rows = []
    srvr1_tco = baseline_design("srvr1").tco_breakdown().total_usd
    emb1_tco = baseline_design("emb1").tco_breakdown().total_usd
    for bench, model in SCALEOUT_MODELS.items():
        workload = make_workload(bench)
        big = measure_performance(platform("srvr1"), workload, config=config).score
        small = measure_performance(platform("emb1"), workload, config=config).score
        naive = big / small
        with_overheads = model.equivalence_ratio(small, big, big_servers=100)
        naive_tco_adv = srvr1_tco / (naive * emb1_tco)
        real_tco_adv = srvr1_tco / (with_overheads * emb1_tco)
        data["equivalence"][bench] = {
            "naive_ratio": naive,
            "overhead_ratio": with_overheads,
            "naive_tco_advantage": naive_tco_adv,
            "real_tco_advantage": real_tco_adv,
        }
        rows.append(
            (
                bench,
                f"{naive:.1f}x",
                f"{with_overheads:.1f}x",
                percent(naive_tco_adv),
                percent(real_tco_adv),
            )
        )
    sections["emb1-per-srvr1 equivalence"] = format_table(
        ["Benchmark", "naive servers", "w/ overheads",
         "naive TCO adv.", "real TCO adv."],
        rows,
    )

    # 2. Cluster aggregation: n-server cluster vs n x single server.
    bench = "websearch"
    workload = make_workload(bench)
    plat = platform("srvr2")
    single = measure_performance(plat, workload, config=config)
    rows = []
    for servers in (2, 4, 8):
        for dispatch in (Dispatch.ROUND_ROBIN, Dispatch.LEAST_OUTSTANDING):
            # Drive the cluster at ~the single-server peak concurrency.
            per_server_clients = max(
                2, int(single.throughput_rps
                       * workload.profile.think_time_ms / 1000.0) + 8
            )
            result = ClusterSimulator(
                plat, workload, servers=servers,
                clients_per_server=per_server_clients,
                dispatch=dispatch,
                warmup_requests=300,
                measure_requests=2500,
            ).run()
            aggregation = result.throughput_rps / (servers * single.throughput_rps)
            data["cluster"][(servers, dispatch.value)] = {
                "aggregation": aggregation,
                "p95_ms": result.qos_percentile_ms,
                "imbalance": result.imbalance,
            }
            rows.append(
                (
                    servers,
                    str(dispatch),
                    percent(aggregation),
                    f"{result.qos_percentile_ms:.0f} ms",
                    f"{result.imbalance:.3f}",
                )
            )
    sections[f"cluster aggregation ({bench}, srvr2)"] = format_table(
        ["Servers", "Dispatch", "vs n x single", "p95", "imbalance"], rows
    )

    return ExperimentResult(
        experiment_id="EXT-3",
        title="Scale-out limits and cluster aggregation",
        paper_reference="section 4 (caveats)",
        sections=sections,
        data=data,
    )
