"""Figure 2: benefits from low-cost low-power CPUs from non-server markets.

- Figure 2(a): per-system infrastructure-cost breakdown (stacked, here as
  a component table).
- Figure 2(b): per-system burdened power-and-cooling breakdown.
- Figure 2(c): performance, Perf/Inf-$, Perf/W and Perf/TCO-$ for every
  benchmark on every system, relative to srvr1, plus the harmonic mean.

Also reports the section 3.2 rack-power observation (srvr1 13.6 kW/rack
vs emb1 2.7 kW/rack).
"""

from __future__ import annotations

from repro.core.analysis import evaluate_designs
from repro.core.designs import baseline_design
from repro.costmodel.catalog import server_bill, system_names
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.reporting import (
    ExperimentResult,
    ascii_stacked_bars,
    format_table,
    percent,
)
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names

#: Metric blocks reported by Figure 2(c), in paper order.
FIGURE2C_METRICS = ["Perf", "Perf/Inf-$", "Perf/W", "Perf/TCO-$"]


def run(method: str = "sim", config: SimConfig = SimConfig()) -> ExperimentResult:
    """Regenerate Figure 2.  ``method`` selects DES or analytic scoring."""
    systems = system_names()
    model = TcoModel()
    power_model = PowerModel()

    # (a) Infrastructure and (b) P&C cost breakdowns per system.
    component_labels = ["cpu", "memory", "disk", "board+mgmt", "power+fans", "rack+switch"]
    inf_rows, pc_rows = [], []
    breakdowns = {name: model.breakdown(server_bill(name)) for name in systems}
    for label in component_labels:
        inf_rows.append(
            [label] + [f"{breakdowns[s].hardware_usd.get(label, 0):,.0f}" for s in systems]
        )
        pc_rows.append(
            [label] + [f"{breakdowns[s].power_cooling_usd.get(label, 0):,.0f}" for s in systems]
        )
    inf_rows.append(
        ["total"] + [f"{breakdowns[s].hardware_total_usd:,.0f}" for s in systems]
    )
    pc_rows.append(
        ["total"] + [f"{breakdowns[s].power_cooling_total_usd:,.0f}" for s in systems]
    )
    table_a = format_table(["Inf-$ component"] + systems, inf_rows)
    table_b = format_table(["P&C-$ component"] + systems, pc_rows)
    chart_a = ascii_stacked_bars(
        {s: dict(breakdowns[s].hardware_usd) for s in systems}
    )
    chart_b = ascii_stacked_bars(
        {s: dict(breakdowns[s].power_cooling_usd) for s in systems}
    )

    # (c) Efficiency matrix via the full design-evaluation pipeline.
    designs = [baseline_design(name) for name in systems]
    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method=method, config=config
    )
    sections = {
        "Inf-$ breakdown (a)": table_a,
        "Inf-$ chart (a)": chart_a,
        "P&C-$ breakdown (b)": table_b,
        "P&C-$ chart (b)": chart_b,
    }
    for metric in FIGURE2C_METRICS:
        table = evaluation.table(metric)
        rows = [
            [bench] + [percent(table.cells[bench][s]) for s in systems]
            for bench in list(table.cells)
        ]
        sections[f"{metric} (c)"] = format_table([metric] + systems, rows)

    # Section 3.2: rack power comparison.
    rack_rows = [
        (name,
         f"{power_model.rack.rack_power_w(server_bill(name).power_w) / 1000:.1f} kW "
         f"nameplate "
         f"({power_model.rack_consumed_w(server_bill(name)) / 1000:.1f} kW consumed)")
        for name in ("srvr1", "emb1")
    ]
    sections["rack power (section 3.2)"] = format_table(
        ["System", "42U rack power"], rack_rows
    )

    return ExperimentResult(
        experiment_id="E5/E6/E14",
        title="Low-cost low-power CPUs from non-server markets",
        paper_reference="Figure 2(a,b,c)",
        sections=sections,
        data={
            "breakdowns": breakdowns,
            "tables": evaluation.tables,
            "metrics": evaluation.metrics,
        },
    )
