"""Shared experiment-result container and plain-text table rendering."""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    paper_reference: str
    #: Section name -> rendered plain-text table.
    sections: Dict[str, str] = field(default_factory=dict)
    #: Structured data for programmatic consumers (benchmarks, tests).
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ({self.paper_reference}) ==="
        parts = [header]
        for name, text in self.sections.items():
            parts.append(f"--- {name} ---")
            parts.append(text)
        return "\n\n".join(parts)

    def payload_digest(self) -> str:
        """SHA-256 over the full payload (sections, data, identity).

        Two results are byte-identical -- same numbers, same seeds, same
        rendering inputs -- exactly when their digests match; the
        determinism tests use this to compare serial and parallel runs.
        """
        payload = (
            self.experiment_id,
            self.title,
            self.paper_reference,
            self.sections,
            self.data,
        )
        blob = pickle.dumps(payload, protocol=4)
        return hashlib.sha256(blob).hexdigest()


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    min_width: int = 10,
) -> str:
    """Fixed-width plain-text table with a left-aligned first column."""
    if not rows:
        return " | ".join(headers)
    widths: List[int] = []
    columns = len(headers)
    for col in range(columns):
        cells = [str(headers[col])] + [str(row[col]) for row in rows]
        widths.append(max(min_width if col else 12, max(len(c) for c in cells)))

    def fmt(cells: Sequence[Any]) -> str:
        out = []
        for col, cell in enumerate(cells):
            text = str(cell)
            out.append(text.ljust(widths[col]) if col == 0 else text.rjust(widths[col]))
        return "  ".join(out)

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def ascii_stacked_bars(
    series: Dict[str, Dict[str, float]],
    width: int = 60,
    symbols: str = "#@*+=~o.",
) -> str:
    """Render stacked horizontal bars (Figure 2(a)/(b) style).

    ``series`` maps bar label -> {segment label: value}; all bars share
    one scale.  Returns the chart plus a symbol legend.
    """
    if not series:
        return "(empty)"
    segment_names: List[str] = []
    for segments in series.values():
        for name in segments:
            if name not in segment_names:
                segment_names.append(name)
    if len(segment_names) > len(symbols):
        raise ValueError(
            f"too many segments ({len(segment_names)}) for the symbol set"
        )
    scale = max(sum(segments.values()) for segments in series.values())
    if scale <= 0:
        raise ValueError("bars must have positive totals")
    label_width = max(len(label) for label in series)
    lines = []
    for label, segments in series.items():
        bar = ""
        for name, symbol in zip(segment_names, symbols):
            units = round(segments.get(name, 0.0) / scale * width)
            bar += symbol * units
        total = sum(segments.values())
        lines.append(f"{label.ljust(label_width)}  {bar} {total:,.0f}")
    legend = "  ".join(
        f"{symbol}={name}" for name, symbol in zip(segment_names, symbols)
    )
    return "\n".join(lines) + "\n" + legend


def percent(value: float) -> str:
    """Render a ratio as the paper's percentage style (``167%``)."""
    return f"{value * 100:.0f}%"


def dollars(value: float) -> str:
    return f"${value:,.0f}"


def watts(value: float) -> str:
    return f"{value:.0f} W"
