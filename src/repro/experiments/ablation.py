"""Ablation study: which of N2's four optimizations carries the gains?

The paper evaluates the optimizations in isolation (sections 3.2-3.5) and
combined (3.6) but never removes them one at a time from the final
design.  This experiment does exactly that: starting from the full N2, it
drops each ingredient -- the embedded platform, the aggregated cooling,
memory sharing, and the flash/remote-disk subsystem -- and reports the
harmonic-mean Perf/TCO-$ (vs srvr1) of every variant.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.cooling.enclosure import AGGREGATED_MICROBLADE, CONVENTIONAL_ENCLOSURE
from repro.core.analysis import evaluate_designs
from repro.core.designs import UnifiedDesign, baseline_design, n2_design
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.flashcache.analysis import disk_configuration
from repro.memsim.provisioning import DYNAMIC_PROVISIONING
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names


def ablated_designs(measured_memory: bool = False) -> List[UnifiedDesign]:
    """N2 plus four leave-one-out variants.

    ``measured_memory`` swaps the paper's assumed uniform 2% paging
    slowdown for per-benchmark slowdowns measured off each workload's
    exact-LRU miss-ratio curve (one memoized trace pass per workload;
    see ``repro.perf.kernels``).
    """
    full = n2_design()
    designs = [
        full,
        UnifiedDesign(
            name="N2-no-embedded",
            platform_name="desk",  # fall back to the desktop platform
            enclosure=AGGREGATED_MICROBLADE,
            memory_scheme=DYNAMIC_PROVISIONING,
            disk_config=disk_configuration("remote-laptop+flash"),
            description="N2 with desktop CPUs instead of embedded",
        ),
        UnifiedDesign(
            name="N2-no-cooling",
            platform_name="emb1",
            enclosure=CONVENTIONAL_ENCLOSURE,
            memory_scheme=DYNAMIC_PROVISIONING,
            disk_config=disk_configuration("remote-laptop+flash"),
            description="N2 in conventional 1U packaging",
        ),
        UnifiedDesign(
            name="N2-no-memshare",
            platform_name="emb1",
            enclosure=AGGREGATED_MICROBLADE,
            memory_scheme=None,
            disk_config=disk_configuration("remote-laptop+flash"),
            description="N2 with full per-server memory",
        ),
        UnifiedDesign(
            name="N2-no-flashdisk",
            platform_name="emb1",
            enclosure=AGGREGATED_MICROBLADE,
            memory_scheme=DYNAMIC_PROVISIONING,
            disk_config=None,  # keep the local desktop disk
            description="N2 with local desktop disks",
        ),
    ]
    if measured_memory:
        designs = [
            replace(d, measured_memory=True) if d.memory_scheme else d
            for d in designs
        ]
    return designs


def run(
    method: str = "sim",
    config: SimConfig = SimConfig(),
    measured_memory: bool = False,
) -> ExperimentResult:
    """Evaluate N2 and its leave-one-out variants against srvr1."""
    designs = [baseline_design("srvr1"), *ablated_designs(measured_memory)]
    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method=method, config=config
    )
    tco = evaluation.table("Perf/TCO-$")
    watt = evaluation.table("Perf/W")

    full_hmean = tco.hmean("N2")
    rows = []
    contributions: Dict[str, float] = {}
    for design in designs[1:]:
        hmean = tco.hmean(design.name)
        delta = full_hmean - hmean if design.name != "N2" else 0.0
        contributions[design.name] = delta
        rows.append(
            (
                design.name,
                percent(hmean),
                percent(watt.hmean(design.name)),
                f"{delta * 100:+.0f}pp" if design.name != "N2" else "--",
            )
        )
    table = format_table(
        ["Variant", "Perf/TCO-$ HMean", "Perf/W HMean", "cost of removal"], rows
    )
    return ExperimentResult(
        experiment_id="EXT-2",
        title="N2 leave-one-out ablation",
        paper_reference="sections 3.2-3.6 (composition)",
        sections={"ablation": table},
        data={"tables": evaluation.tables, "contributions": contributions},
    )
