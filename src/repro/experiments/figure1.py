"""Figure 1: cost models and breakdowns for srvr1 and srvr2.

Figure 1(a) is the cost-model table (per-component costs and power,
burdened 3-year power-and-cooling, totals); Figure 1(b) is the srvr2 TCO
pie chart, rendered here as a percentage table.

Paper values for validation: srvr1 total $5,758 (P&C $2,464), srvr2 total
$3,249 (P&C $1,561); srvr2 pie has CPU HW ~20% and CPU P&C ~22% as the two
largest slices.
"""

from __future__ import annotations

from repro.costmodel.catalog import server_bill
from repro.costmodel.tco import TcoModel
from repro.experiments.reporting import (
    ExperimentResult,
    dollars,
    format_table,
    percent,
)


def run() -> ExperimentResult:
    """Regenerate Figure 1's cost table and breakdown."""
    model = TcoModel()
    breakdowns = {name: model.breakdown(server_bill(name)) for name in ("srvr1", "srvr2")}

    # Figure 1(a): the cost model table.
    rows = []
    labels = ["cpu", "memory", "disk", "board+mgmt", "power+fans", "rack+switch"]
    for label in labels:
        rows.append(
            (
                f"{label} HW",
                dollars(breakdowns["srvr1"].hardware_usd.get(label, 0.0)),
                dollars(breakdowns["srvr2"].hardware_usd.get(label, 0.0)),
            )
        )
    rows.append(
        (
            "server power (W)",
            f"{breakdowns['srvr1'].server_power_w:.0f}",
            f"{breakdowns['srvr2'].server_power_w:.0f}",
        )
    )
    rows.append(
        (
            "3-yr power & cooling",
            dollars(breakdowns["srvr1"].power_cooling_total_usd),
            dollars(breakdowns["srvr2"].power_cooling_total_usd),
        )
    )
    rows.append(
        (
            "total costs",
            dollars(breakdowns["srvr1"].total_usd),
            dollars(breakdowns["srvr2"].total_usd),
        )
    )
    table_a = format_table(["Details", "srvr1", "srvr2"], rows)

    # Figure 1(b): srvr2 breakdown as pie-slice percentages.
    srvr2 = breakdowns["srvr2"]
    pie_rows = []
    for (label, category), fraction in sorted(
        srvr2.pie_slices().items(), key=lambda kv: -kv[1]
    ):
        pie_rows.append((f"{label} {category}", percent(fraction)))
    table_b = format_table(["Slice", "Share of TCO"], pie_rows)

    return ExperimentResult(
        experiment_id="E2/E3",
        title="Cost models and breakdowns",
        paper_reference="Figure 1(a,b)",
        sections={"cost model (a)": table_a, "srvr2 breakdown (b)": table_b},
        data={
            "srvr1_total": breakdowns["srvr1"].total_usd,
            "srvr2_total": breakdowns["srvr2"].total_usd,
            "srvr1_pc": breakdowns["srvr1"].power_cooling_total_usd,
            "srvr2_pc": breakdowns["srvr2"].power_cooling_total_usd,
            "srvr2_slices": srvr2.pie_slices(),
        },
    )
