"""Table 3: low-power disks with flash disk caches.

- Table 3(a): device parameters (flash, laptop, laptop-2, desktop disks).
- Table 3(b): net cost and power efficiencies (harmonic mean across the
  benchmark suite) of each disk configuration on the emb1 deployment
  target, relative to the local desktop-disk baseline.  Paper values:
  remote laptop 93%/100%/96%, remote laptop + flash 99%/109%/104%,
  remote laptop-2 + flash 110%/109%/110% (Perf/Inf-$ / Perf/W /
  Perf/TCO-$).
"""

from __future__ import annotations

from typing import Dict

from repro.core.metrics import harmonic_mean
from repro.costmodel.catalog import server_bill
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.flashcache.analysis import DISK_CONFIGURATIONS
from repro.platforms.catalog import platform
from repro.platforms.storage import (
    DESKTOP_DISK,
    FLASH_1GB,
    LAPTOP2_DISK,
    LAPTOP_DISK,
)
from repro.simulator.performance import measure_performance
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names, make_workload

#: The deployment target for the disk study (paper: emb1).
TARGET_SYSTEM = "emb1"


def device_table() -> str:
    """Table 3(a): the four storage devices."""
    devices = [FLASH_1GB, LAPTOP_DISK, LAPTOP2_DISK, DESKTOP_DISK]
    rows = []
    for d in devices:
        access = (
            f"{d.read_latency_ms * 1000:.0f}us rd / {d.write_latency_ms * 1000:.0f}us wr"
            if d.is_flash
            else f"{d.read_latency_ms:.0f} ms avg"
        )
        rows.append(
            (
                d.name,
                f"{d.bandwidth_mb_s:.0f} MB/s",
                access,
                f"{d.capacity_gb:g} GB",
                f"{d.power_w:g} W",
                f"${d.price_usd:g}",
                str(d.location),
            )
        )
    return format_table(
        ["Device", "Bandwidth", "Access time", "Capacity", "Power", "Price", "Location"],
        rows,
    )


def configuration_efficiencies(
    method: str = "sim", config: SimConfig = SimConfig()
) -> Dict[str, Dict[str, float]]:
    """Table 3(b): efficiency ratios per disk configuration."""
    plat = platform(TARGET_SYSTEM)
    base_bill = server_bill(TARGET_SYSTEM)
    tco_model = TcoModel()
    power_model = PowerModel()
    benches = benchmark_names()

    # Per-configuration performance scores and costs.
    scores: Dict[str, Dict[str, float]] = {}
    costs: Dict[str, Dict[str, float]] = {}
    for disk_config in DISK_CONFIGURATIONS:
        bill = base_bill.replace(
            name=f"{TARGET_SYSTEM}+{disk_config.name}",
            disk=disk_config.disk_component(),
        )
        breakdown = tco_model.breakdown(bill)
        costs[disk_config.name] = {
            "inf": breakdown.hardware_total_usd,
            "watt": power_model.server_consumed_w(bill),
            "tco": breakdown.total_usd,
        }
        per_bench = {}
        for bench in benches:
            workload = make_workload(bench)
            result = measure_performance(
                plat,
                workload,
                config=config,
                disk_model=disk_config.make_disk_model(bench),
                method=method,
            )
            per_bench[bench] = result.score
        scores[disk_config.name] = per_bench

    # Relative efficiencies (HMean of per-benchmark ratios vs baseline).
    out: Dict[str, Dict[str, float]] = {}
    base_scores = scores["baseline"]
    base_costs = costs["baseline"]
    for disk_config in DISK_CONFIGURATIONS:
        name = disk_config.name
        perf_ratios = [
            scores[name][b] / base_scores[b] for b in benches
        ]
        perf = harmonic_mean(perf_ratios)
        out[name] = {
            "perf": perf,
            "perf_per_inf": perf * base_costs["inf"] / costs[name]["inf"],
            "perf_per_watt": perf * base_costs["watt"] / costs[name]["watt"],
            "perf_per_tco": perf * base_costs["tco"] / costs[name]["tco"],
        }
    return out


def run(method: str = "sim", config: SimConfig = SimConfig()) -> ExperimentResult:
    """Regenerate Table 3."""
    efficiencies = configuration_efficiencies(method=method, config=config)
    rows = [
        (
            name,
            percent(vals["perf"]),
            percent(vals["perf_per_inf"]),
            percent(vals["perf_per_watt"]),
            percent(vals["perf_per_tco"]),
        )
        for name, vals in efficiencies.items()
    ]
    table_b = format_table(
        ["Disk type", "Perf", "Perf/Inf-$", "Perf/Watt", "Perf/TCO-$"], rows
    )
    return ExperimentResult(
        experiment_id="E10/E11",
        title="Low-power disks with flash disk caches",
        paper_reference="Table 3(a,b)",
        sections={"devices (a)": device_table(), "efficiencies (b)": table_b},
        data={"efficiencies": efficiencies},
    )
