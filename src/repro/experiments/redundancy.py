"""Redundancy and recovery for shared-fate memory blades: EXT-13.

The paper's N2 design concentrates 8 servers' remote working sets on
one memory blade -- a shared-fate resource whose single failure EXT-8
prices as a correlated outage and whose *graceful* degradation (fall
back to local paging) this repo simulates.  Warehouse practice does
neither: it replicates.  This experiment adds the missing arm of that
argument by sweeping one blade fault storm across three protection
levels of the same N2 cluster, identical seed and workload:

- **unprotected** -- today's single blade; its loss drops every server
  to swap-path paging (~50x per-miss) for the whole repair window;
- **2-replica** -- every remote page written to two of three blades;
  a blade loss fails reads over to the surviving copy at 1x transfer
  amplification, and a background *rebuild stream* re-replicates onto
  the repaired blade as real simulated traffic sharing the blade link;
- **4+1 parity** -- RAID-5-style striping over five blades at 1.25x
  capacity overhead; degraded reads reconstruct from k surviving
  shards (kx amplification), so protection is cheaper but the failover
  window costs more link time.

The rebuild stream is throttled by a token bucket plus a
p99-backpressure gate (:class:`~repro.faults.recovery.RebuildPolicy`),
and every run is traced, so the interference bill is explicit:
foreground blade-link spans that queued behind rebuild chunks carry a
``rebuild=True`` attribute and the critical-path table shows the
remote-memory milliseconds at the p99.  A rolling-maintenance section
drains each server in turn through the same recovery machinery, and a
durability section prices the arms against each other: MTTDL from the
classic Markov approximation, probability of data loss over the
three-year depreciation cycle, and the paper's Perf/TCO-$ re-weighted
by durability and charged for the redundant capacity.

Determinism: redundancy bookkeeping consumes zero RNG, rebuild is
scripted traffic, and with the group healthy the balancer's fast path
is byte-identical to the unprotected one -- asserted here by digest
equality -- so the grid fans out with ``pmap`` reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.costmodel.availability import (
    DurabilityAdjustedTco,
    DurabilityModel,
    RepairCostModel,
)
from repro.costmodel.components import Component
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.availability import (
    DEGRADED_CREDIT,
    _TRACE_LENGTH,
    _WORKLOAD,
    _setups,
)
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.faults.model import ComponentType, DEFAULT_FAULT_PROFILE
from repro.faults.recovery import (
    BladeFault,
    MaintenancePlan,
    RebuildPolicy,
    RedundancyConfig,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.redundancy import RedundancyPolicy
from repro.memsim.remote_memory import make_remote_memory_model
from repro.obs.critical_path import attribute_critical_path
from repro.obs.export import trace_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanKind
from repro.obs.tracer import Tracer
from repro.perf.parallel import intra_jobs, merge_telemetry, pmap
from repro.workloads.suite import make_workload

#: Remote pages per server in the simulated blade group (content-level
#: bookkeeping scale, not the full working set).
PAGES_PER_SERVER = 256

#: Fraction of the working set kept in local DRAM on N2.
LOCAL_FRACTION = 0.25

#: The storm: blade 0 dies 1 s in and comes back (blank) at 15 s, so
#: the degraded window covers a large slice of the measured run *and*
#: the post-repair rebuild stream contends with live foreground
#: traffic for the rest of it.
BLADE_STORM = (BladeFault(0, 1_000.0, 15_000.0),)

#: QoS-aware rebuild throttle used by every protected arm.
REBUILD = RebuildPolicy(
    chunk_pages=64,
    rate_pages_per_s=20_000.0,
    backpressure_ms=600.0,
)

#: Per-attempt retry/hedge policy shared by every arm.
RETRY = RetryPolicy(
    timeout_ms=1000.0, max_retries=3, backoff_base_ms=20.0,
    hedge_after_ms=400.0,
)

#: Nominal blade capacity for the analytic rebuild-window estimate.
BLADE_GB = 16.0

#: Protection arms: policy constructor args keyed by name.
POLICIES: Dict[str, Optional[RedundancyPolicy]] = {
    "unprotected": None,
    "replica": RedundancyPolicy.replicated(2),
    "parity": RedundancyPolicy.parity(4),
}

#: Blade-group width per arm (replica spreads 2 copies over 3 blades;
#: parity stripes 4+1 over 5).
BLADES: Dict[str, int] = {"unprotected": 1, "replica": 3, "parity": 5}


def _redundancy_config(
    policy_name: str, storm: bool
) -> RedundancyConfig:
    """The :class:`RedundancyConfig` for one arm of the sweep."""
    return RedundancyConfig(
        policy=POLICIES[policy_name],
        blades=BLADES[policy_name],
        pages_per_server=PAGES_PER_SERVER,
        rebuild=REBUILD,
        blade_faults=BLADE_STORM if storm else (),
    )


@dataclass(frozen=True)
class RedundancyRunConfig:
    """One cluster run of the EXT-13 grid (picklable for ``pmap``)."""

    #: "baseline" (no redundancy machinery at all), "healthy"
    #: (protected, no faults -- the digest guard), "storm", or
    #: "rolling" (maintenance drains, no blade faults).
    scenario: str
    #: Key into :data:`POLICIES`; ignored for "baseline".
    policy: str = "unprotected"
    servers: int = 4
    clients_per_server: int = 8
    warmup: int = 200
    measure: int = 1500
    seed: int = 1
    sample_rate: float = 1.0
    trace_seed: int = 17
    traced: bool = True


def run_redundancy_config(config: RedundancyRunConfig) -> dict:
    """Run one arm; module-level so ``pmap`` can fan the grid out."""
    setup = next(s for s in _setups() if s.name == "N2")
    workload = make_workload(_WORKLOAD)
    remote = make_remote_memory_model(
        _WORKLOAD, local_fraction=LOCAL_FRACTION, trace_length=_TRACE_LENGTH
    )
    disk_config = disk_configuration("remote-laptop+flash")

    redundancy = None
    maintenance = None
    if config.scenario == "healthy":
        redundancy = _redundancy_config(config.policy, storm=False)
    elif config.scenario == "storm":
        redundancy = _redundancy_config(config.policy, storm=True)
    elif config.scenario == "rolling":
        redundancy = _redundancy_config(config.policy, storm=False)
        maintenance = MaintenancePlan.rolling(
            config.servers, start_ms=5_000.0, duration_ms=4_000.0,
            gap_ms=1_000.0,
        )
    elif config.scenario != "baseline":
        raise ValueError(f"unknown scenario {config.scenario!r}")

    tracer = (
        Tracer(sample_rate=config.sample_rate, seed=config.trace_seed)
        if config.traced
        else None
    )
    metrics = MetricsRegistry()
    result = ClusterSimulator(
        platform=setup.design.platform,
        workload=workload,
        servers=config.servers,
        clients_per_server=config.clients_per_server,
        seed=config.seed,
        warmup_requests=config.warmup,
        measure_requests=config.measure,
        disk_model_factory=lambda: disk_config.make_disk_model(_WORKLOAD),
        remote_memory=remote,
        retry=RETRY,
        redundancy=redundancy,
        maintenance=maintenance,
        tracer=tracer,
        metrics=metrics,
    ).run()
    return {
        "config": config,
        "result": result,
        "tracer": tracer,
        "metrics": metrics,
    }


def _remote_p99_ms(payload: dict) -> float:
    """Exclusive remote-memory milliseconds in the p99 critical path."""
    tracer = payload["tracer"]
    if tracer is None:
        return 0.0
    attributions = attribute_critical_path(
        tracer.completed_traces(), percentiles=(0.99,)
    )
    if not attributions:
        return 0.0
    return attributions[0].components.get(SpanKind.REMOTE_MEM, 0.0)


def _rebuild_flagged_spans(payload: dict) -> int:
    """Foreground blade-link spans that ran while a rebuild was active."""
    tracer = payload["tracer"]
    if tracer is None:
        return 0
    return sum(
        1
        for trace in tracer.traces
        for span in trace.spans
        if span.attrs is not None and span.attrs.get("rebuild")
    )


def _rebuild_window_hours(policy: Optional[RedundancyPolicy]) -> float:
    """Hours to re-protect one blank blade at the throttle's rate."""
    if policy is None:
        return 0.0
    pages = BLADE_GB * 1024**3 / 4096.0
    transfers = pages * policy.rebuild_transfers_per_page
    return transfers / REBUILD.rate_pages_per_s / 3600.0


def _fmt_ms(value: float) -> str:
    return f"{value:.1f} ms"


def run(
    servers: int = 4,
    clients_per_server: int = 8,
    warmup: int = 200,
    measure: int = 1500,
    seed: int = 1,
    sample_rate: float = 1.0,
    trace_seed: int = 17,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep unprotected / 2-replica / 4+1-parity N2 under a blade storm."""
    common = dict(
        servers=servers,
        clients_per_server=clients_per_server,
        warmup=warmup,
        measure=measure,
        seed=seed,
        sample_rate=sample_rate,
        trace_seed=trace_seed,
    )
    configs: List[RedundancyRunConfig] = [
        RedundancyRunConfig(scenario="baseline", **common),
        RedundancyRunConfig(scenario="healthy", policy="replica", **common),
        RedundancyRunConfig(scenario="storm", policy="unprotected", **common),
        RedundancyRunConfig(scenario="storm", policy="replica", **common),
        RedundancyRunConfig(scenario="storm", policy="parity", **common),
        RedundancyRunConfig(scenario="rolling", policy="replica", **common),
    ]
    payloads = pmap(
        run_redundancy_config,
        configs,
        jobs=intra_jobs() if jobs is None else jobs,
    )
    by_key = {
        (p["config"].scenario, p["config"].policy): p for p in payloads
    }

    data: Dict[str, object] = {}
    sections: Dict[str, str] = {}

    baseline = by_key[("baseline", "unprotected")]
    healthy_on = by_key[("healthy", "replica")]
    base_result = baseline["result"]
    digest_off = base_result.stream_digest()
    digest_on = healthy_on["result"].stream_digest()
    data["digest_match"] = digest_off == digest_on
    data["stream_digest"] = digest_off

    # -- headline: the storm across protection levels ------------------
    storm_rows = []
    arm_data: Dict[str, object] = {}
    for policy_name in POLICIES:
        payload = by_key[("storm", policy_name)]
        result = payload["result"]
        rr = result.recovery_report
        fault_report = result.fault_report
        retention = (
            result.goodput_rps / base_result.goodput_rps
            if base_result.goodput_rps
            else 0.0
        )
        lost = rr.audit.lost if rr.audit is not None else 0
        storm_rows.append([
            policy_name,
            _fmt_ms(result.p99_ms),
            f"{result.p99_ms / base_result.p99_ms:.2f}x",
            f"{result.goodput_rps:.1f} rps",
            percent(retention),
            str(rr.failover_requests),
            str(fault_report.degraded_requests if fault_report else 0),
            str(rr.pages_rebuilt),
            str(lost),
        ])
        arm_data[policy_name] = {
            "p99_ms": result.p99_ms,
            "goodput_rps": result.goodput_rps,
            "goodput_retention": retention,
            "failover_requests": rr.failover_requests,
            "lossy_requests": rr.lossy_requests,
            "degraded_requests": (
                fault_report.degraded_requests if fault_report else 0
            ),
            "pages_rebuilt": rr.pages_rebuilt,
            "exposure_ms": rr.exposure_ms,
            "lost_pages": lost,
            "duplicated_pages": (
                rr.audit.duplicated if rr.audit is not None else 0
            ),
            "conserved": rr.audit.conserved if rr.audit is not None else None,
            "data_loss": rr.data_loss,
            "remote_p99_component_ms": _remote_p99_ms(payload),
        }
    data["healthy_p99_ms"] = base_result.p99_ms
    data["healthy_goodput_rps"] = base_result.goodput_rps
    data["storm"] = arm_data
    sections[
        "one blade fault storm vs protection level (N2, identical seed)"
    ] = format_table(
        [
            "Arm", "p99", "vs healthy", "goodput", "retention",
            "failover reqs", "degraded reqs", "pages rebuilt", "lost pages",
        ],
        storm_rows,
    )

    # -- rebuild stream: real traffic, real interference ----------------
    healthy_remote_p99 = _remote_p99_ms(baseline)
    rebuild_rows = []
    for policy_name in ("replica", "parity"):
        payload = by_key[("storm", policy_name)]
        rr = payload["result"].recovery_report
        rebuild_rows.append([
            policy_name,
            str(rr.pages_rebuilt),
            str(rr.rebuild_chunks),
            _fmt_ms(rr.rebuild_ms),
            str(rr.throttle_denials),
            str(rr.backpressure_pauses),
            _fmt_ms(rr.exposure_ms),
            str(_rebuild_flagged_spans(payload)),
            _fmt_ms(arm_data[policy_name]["remote_p99_component_ms"]),
        ])
        arm_data[policy_name]["rebuild_chunks"] = rr.rebuild_chunks
        arm_data[policy_name]["rebuild_ms"] = rr.rebuild_ms
        arm_data[policy_name]["throttle_denials"] = rr.throttle_denials
        arm_data[policy_name]["backpressure_pauses"] = rr.backpressure_pauses
        arm_data[policy_name]["rebuild_flagged_spans"] = (
            _rebuild_flagged_spans(payload)
        )
    data["healthy_remote_p99_component_ms"] = healthy_remote_p99
    sections[
        "rebuild as foreground traffic (token bucket + p99 backpressure)"
    ] = format_table(
        [
            "Arm", "pages", "chunks", "stream time", "rate denials",
            "backpressure", "exposure window", "delayed fg spans",
            "remote-mem ms @ p99",
        ],
        rebuild_rows,
    ) + (
        f"\nhealthy remote-mem ms @ p99: {healthy_remote_p99:.1f} ms; the "
        "exposure window is how long any page sat below full redundancy."
    )

    # -- rolling maintenance through the same machinery -----------------
    rolling = by_key[("rolling", "replica")]
    rolling_result = rolling["result"]
    rolling_rr = rolling_result.recovery_report
    rolling_retention = (
        rolling_result.goodput_rps / base_result.goodput_rps
        if base_result.goodput_rps
        else 0.0
    )
    data["rolling"] = {
        "drains": rolling_rr.drains,
        "drain_ms": rolling_rr.drain_ms,
        "p99_ms": rolling_result.p99_ms,
        "goodput_retention": rolling_retention,
        "hedges": (
            rolling_result.fault_report.hedges
            if rolling_result.fault_report
            else 0
        ),
    }
    sections["rolling upgrade: drain each server in turn (2-replica)"] = (
        format_table(
            ["Drains", "total drained time", "p99", "goodput retention"],
            [[
                str(rolling_rr.drains),
                _fmt_ms(rolling_rr.drain_ms),
                _fmt_ms(rolling_result.p99_ms),
                percent(rolling_retention),
            ]],
        )
    )

    # -- durability-adjusted TCO ----------------------------------------
    setup = next(s for s in _setups() if s.name == "N2")
    repair_model = RepairCostModel(DEFAULT_FAULT_PROFILE)
    model = TcoModel(power_model=PowerModel(rack=setup.design.rack()))
    adjusted = model.availability_adjusted(
        setup.design.bill(),
        repair_model,
        setup.components,
        shared=setup.shared,
        degraded=DEGRADED_CREDIT,
    )
    blade_spec = DEFAULT_FAULT_PROFILE.spec(ComponentType.MEMORY_BLADE)
    # The blade slice of the DRAM bill: everything not kept locally.
    memory_capex = (
        setup.design.bill().components[Component.MEMORY].cost_usd
        * (1.0 - LOCAL_FRACTION)
    )
    durability_rows = []
    durability_data: Dict[str, object] = {}
    metrics_by_arm: Dict[str, float] = {}
    for policy_name, policy in POLICIES.items():
        durability_model = DurabilityModel.for_policy(
            blade_spec,
            policy,
            blades=BLADES[policy_name],
            rebuild_hours=_rebuild_window_hours(policy),
        )
        priced = DurabilityAdjustedTco(
            adjusted=adjusted,
            durability_model=durability_model,
            memory_capex_usd=memory_capex,
        )
        perf = arm_data[policy_name]["goodput_rps"] / servers
        metric = priced.durability_weighted_perf_per_tco(perf)
        metrics_by_arm[policy_name] = metric
        durability_rows.append([
            policy_name,
            str(durability_model.group_width),
            str(durability_model.fault_tolerance),
            f"{durability_model.capacity_overhead:.2f}x",
            f"{durability_model.mttdl_hours / 8760.0:.3g} yr",
            f"{durability_model.data_loss_probability():.2e}",
            f"${priced.redundancy_capex_usd:.0f}",
            f"{metric:.4f}",
        ])
        durability_data[policy_name] = {
            "mttdl_hours": durability_model.mttdl_hours,
            "data_loss_probability": (
                durability_model.data_loss_probability()
            ),
            "redundancy_capex_usd": priced.redundancy_capex_usd,
            "durability_weighted_perf_per_tco": metric,
        }
    base_metric = metrics_by_arm["unprotected"]
    for row, policy_name in zip(durability_rows, POLICIES):
        row.append(
            percent(metrics_by_arm[policy_name] / base_metric)
            if base_metric
            else "n/a"
        )
        durability_data[policy_name]["relative_metric"] = (
            metrics_by_arm[policy_name] / base_metric if base_metric else 0.0
        )
    data["durability"] = durability_data
    sections["durability-adjusted Perf/TCO-$ over the 3-year cycle"] = (
        format_table(
            [
                "Arm", "blades", "tolerance", "capacity", "MTTDL",
                "P(loss)/cycle", "extra capex", "perf/TCO-$", "relative",
            ],
            durability_rows,
        )
    )

    data["trace_digests"] = {
        f"{p['config'].scenario}/{p['config'].policy}": trace_digest(
            [(
                f"{p['config'].scenario}/{p['config'].policy}",
                p["tracer"].traces,
            )]
        )
        for p in payloads
        if p["tracer"] is not None
    }
    combined = merge_telemetry(p["metrics"] for p in payloads)
    if combined is not None:
        data["combined"] = {
            "rebuild_pages": combined.value("rebuild.pages"),
            "rebuild_chunks": combined.value("rebuild.chunks"),
            "backpressure_pauses": combined.value(
                "rebuild.backpressure_pauses"
            ),
            "throttle_denials": combined.value("rebuild.throttle_denials"),
        }

    replica = arm_data["replica"]
    unprot = arm_data["unprotected"]
    sections["conclusion"] = (
        "losing the shared blade costs the unprotected N2 a "
        f"{unprot['p99_ms'] / base_result.p99_ms:.2f}x p99 cliff -- "
        f"{unprot['degraded_requests']} requests page in over the ~50x "
        "swap path during the repair window.  Two-way replication holds "
        f"{percent(replica['goodput_retention'])} of healthy goodput "
        "through the same storm -- failover reads cost one transfer, so "
        "the link model is unchanged -- and re-replicates "
        f"{replica['pages_rebuilt']} pages as throttled background "
        "traffic once the blade returns; 4+1 parity buys the same "
        "single-fault tolerance at 1.25x capacity (vs 2x) but pays kx "
        "link amplification while degraded.  The durability table "
        "prices the trade: the unprotected arm's "
        f"{durability_data['unprotected']['data_loss_probability']:.0%} "
        "chance of losing remote pages inside the depreciation cycle "
        "outweighs the replicas' capacity premium, and with the group "
        "healthy the whole layer costs nothing -- the protected run's "
        "request stream is byte-identical to the unprotected one "
        f"(digest match: {data['digest_match']})."
    )
    data["workload"] = _WORKLOAD
    data["pages_per_server"] = PAGES_PER_SERVER
    data["rebuild_rate_pages_per_s"] = REBUILD.rate_pages_per_s
    data["sample_rate"] = sample_rate
    data["trace_seed"] = trace_seed
    return ExperimentResult(
        experiment_id="EXT-13",
        title="Redundancy and recovery for shared-fate memory blades",
        paper_reference="section 3.4 memory blade, shared-fate failure",
        sections=sections,
        data=data,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI entry: ``python -m repro.experiments.redundancy --smoke``.

    Smoke mode runs the seeded mini grid untraced and asserts the
    EXT-13 acceptance properties: the protected healthy run is
    stream-identical to the unprotected one, 2-replica N2 keeps at
    least 90% of healthy goodput through a blade failure with zero
    lost or duplicated pages, and the unprotected arm shows the
    local-paging p99 cliff.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro-redundancy")
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunk seeded run with pass/fail acceptance checks",
    )
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    if not args.smoke:
        result = run(
            measure=args.measure or 1500,
            jobs=args.jobs if args.jobs > 0 else None,
        )
        print(result.render())
        return 0

    measure = args.measure or 900
    common = dict(measure=measure, traced=False)
    runs = {
        key: run_redundancy_config(
            RedundancyRunConfig(scenario=scenario, policy=policy, **common)
        )["result"]
        for key, scenario, policy in (
            ("baseline", "baseline", "unprotected"),
            ("healthy-on", "healthy", "replica"),
            ("unprotected", "storm", "unprotected"),
            ("replica", "storm", "replica"),
            ("parity", "storm", "parity"),
        )
    }
    failures: List[str] = []

    base = runs["baseline"]
    if runs["healthy-on"].stream_digest() != base.stream_digest():
        failures.append(
            "FAIL: healthy 2-replica run is not stream-identical to the "
            "unprotected baseline (redundancy must be free when clean)"
        )

    replica = runs["replica"]
    retention = (
        replica.goodput_rps / base.goodput_rps if base.goodput_rps else 0.0
    )
    if retention < 0.90:
        failures.append(
            f"FAIL: 2-replica goodput retention {retention:.1%} < 90% "
            "through a single blade failure"
        )
    for name in ("replica", "parity"):
        rr = runs[name].recovery_report
        audit = rr.audit
        if audit is None or not audit.conserved:
            failures.append(f"FAIL: {name} page audit not conserved: {audit}")
        elif audit.lost or audit.duplicated:
            failures.append(
                f"FAIL: {name} lost {audit.lost} / duplicated "
                f"{audit.duplicated} pages under a tolerable fault"
            )
        if rr.pages_rebuilt == 0:
            failures.append(f"FAIL: {name} rebuilt no pages after repair")

    cliff = runs["unprotected"].p99_ms / base.p99_ms if base.p99_ms else 0.0
    if cliff < 1.2:
        failures.append(
            f"FAIL: unprotected p99 cliff {cliff:.2f}x < 1.2x (local "
            "paging should visibly inflate the tail)"
        )

    print(
        f"healthy p99 {base.p99_ms:.1f} ms, goodput "
        f"{base.goodput_rps:.1f} rps"
    )
    print(
        f"unprotected storm: p99 {runs['unprotected'].p99_ms:.1f} ms "
        f"({cliff:.2f}x cliff)"
    )
    print(
        f"2-replica storm: retention {retention:.1%}, "
        f"{replica.recovery_report.pages_rebuilt} pages rebuilt, "
        f"lost {replica.recovery_report.audit.lost}"
    )
    for line in failures:
        print(line)
    if not failures:
        print("redundancy smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
