"""Time-of-day load and ensemble energy (section 4 caveat, quantified).

The paper studies sustained peak load only.  This experiment adds the
diurnal dimension: a fleet provisioned for peak websearch load spends
most of the day underutilized, so

- per-server energy-proportionality (idle power fraction) dominates the
  *energy* bill, and
- ensemble-level management (parking servers at the trough) recovers a
  large share -- more for high-idle-power server platforms than for the
  already-low-power embedded platforms, reinforcing the paper's
  ensemble-level design argument.

Also reports how memory-blade dynamic provisioning interacts with
diurnal load: the 20%-of-servers-memory-less assumption (section 3.4)
matches the off-peak fraction of a typical 3:1 day.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.diurnal import DiurnalLoadModel, EnsembleEnergyModel
from repro.costmodel.catalog import server_bill
from repro.costmodel.power import PowerModel
from repro.experiments.reporting import ExperimentResult, format_table, percent

FLEET_SERVERS = 1000
PROFILE = DiurnalLoadModel(peak_to_trough=3.0)
#: Fan et al.-style idle power: ~60% of peak for classic servers;
#: low-power platforms idle proportionally lower.
IDLE_FRACTIONS = {"srvr1": 0.65, "desk": 0.60, "emb1": 0.50}
PARKABLE = 0.5


def run() -> ExperimentResult:
    """Daily fleet energy with and without ensemble parking."""
    power_model = PowerModel()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for system, idle in IDLE_FRACTIONS.items():
        peak_w = power_model.server_consumed_w(server_bill(system))
        unmanaged = EnsembleEnergyModel(peak_w, idle, parkable_fraction=0.0)
        managed = EnsembleEnergyModel(peak_w, idle, parkable_fraction=PARKABLE)
        base_kwh = unmanaged.daily_energy_kwh(FLEET_SERVERS, PROFILE)
        managed_kwh = managed.daily_energy_kwh(FLEET_SERVERS, PROFILE)
        savings = managed.parking_savings(FLEET_SERVERS, PROFILE)
        data[system] = {
            "daily_kwh": base_kwh,
            "managed_kwh": managed_kwh,
            "savings": savings,
        }
        rows.append(
            (
                system,
                f"{peak_w:.0f} W",
                f"{base_kwh:,.0f} kWh",
                f"{managed_kwh:,.0f} kWh",
                percent(savings),
            )
        )
    table = format_table(
        ["System", "peak/server", "daily energy", "w/ parking", "saving"], rows
    )

    note = (
        f"diurnal profile: {PROFILE.peak_to_trough:.0f}:1 peak-to-trough, "
        f"mean utilization {PROFILE.mean_utilization:.0%} of peak; "
        f"dynamic memory provisioning's 85%-of-baseline assumption "
        f"(section 3.4) corresponds to parking "
        f"{1 - PROFILE.mean_utilization:.0%}-load headroom."
    )

    return ExperimentResult(
        experiment_id="EXT-4",
        title="Diurnal load and ensemble energy management",
        paper_reference="section 4 (time-of-day caveat)",
        sections={"fleet energy": table, "note": note},
        data=data,
    )
