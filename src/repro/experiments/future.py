"""The "N3" forward look: composing the paper's section 4 enhancements.

The paper closes with architectural enhancements it leaves to future
work.  This experiment composes them on top of N2 and estimates the
additional headroom:

1. *Critical-block-first everywhere*: remote-page misses at 0.75 us
   instead of 4 us shrink the memory-sharing slowdown (the 2% assumption
   drops to ~0.5%).
2. *DMA I/O to second-level memory*: removes the I/O share of remote
   misses (:mod:`repro.memsim.dma`).
3. *Content-based sharing + compression on the blade*: the blade stores
   ~2x its physical capacity, so the dynamic scheme's remote DRAM
   shrinks accordingly.
4. *Flash as full disk replacement*: a dataset-sized flash array replaces
   the SAN entirely (faster, pricier).

Each step is reported cumulatively as HMean Perf/TCO-$ vs srvr1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cooling.enclosure import AGGREGATED_MICROBLADE
from repro.core.analysis import evaluate_designs
from repro.core.designs import UnifiedDesign, baseline_design, n2_design
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.flashcache.analysis import disk_configuration, flash_only_configuration
from repro.memsim.dma import DmaDirectModel
from repro.memsim.provisioning import DYNAMIC_PROVISIONING, ProvisioningScheme
from repro.memsim.sharing import (
    CompressionModel,
    PageSharingModel,
    effective_capacity_factor,
)
from repro.memsim.twolevel import CBF_PAGE_LATENCY_US, PCIE_X4_PAGE_LATENCY_US
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names


def _cbf_dma_slowdown(base_slowdown: float = 0.02) -> float:
    """N2's assumed 2% PCIe slowdown, with CBF and DMA-direct applied."""
    cbf_factor = CBF_PAGE_LATENCY_US / PCIE_X4_PAGE_LATENCY_US
    dma_factor = DmaDirectModel().effective_miss_cost_factor()
    return base_slowdown * cbf_factor * dma_factor


def _shared_compressed_scheme() -> ProvisioningScheme:
    """Dynamic provisioning with blade-side sharing + compression.

    The blade's physical DRAM shrinks by the effective-capacity factor
    while serving the same logical remote fraction.
    """
    factor = effective_capacity_factor(
        PageSharingModel(servers=8), CompressionModel()
    )
    return ProvisioningScheme(
        name="dynamic+shared+compressed",
        local_fraction=DYNAMIC_PROVISIONING.local_fraction,
        remote_fraction=DYNAMIC_PROVISIONING.remote_fraction / factor,
    )


def future_designs() -> List[Tuple[str, UnifiedDesign]]:
    """N2 and the cumulative enhancement steps."""
    n2 = n2_design()
    step2 = UnifiedDesign(
        name="N3-memfast",
        platform_name="emb1",
        enclosure=AGGREGATED_MICROBLADE,
        memory_scheme=DYNAMIC_PROVISIONING,
        disk_config=disk_configuration("remote-laptop+flash"),
        description="N2 + CBF + DMA-direct remote memory",
    )
    step3 = UnifiedDesign(
        name="N3-memlean",
        platform_name="emb1",
        enclosure=AGGREGATED_MICROBLADE,
        memory_scheme=_shared_compressed_scheme(),
        disk_config=disk_configuration("remote-laptop+flash"),
        description="+ blade sharing and compression",
    )
    step4 = UnifiedDesign(
        name="N3-flash",
        platform_name="emb1",
        enclosure=AGGREGATED_MICROBLADE,
        memory_scheme=_shared_compressed_scheme(),
        disk_config=flash_only_configuration(capacity_gb=32.0),
        description="+ flash replaces the disk entirely",
    )
    return [("N2", n2), ("N3-memfast", step2), ("N3-memlean", step3),
            ("N3-flash", step4)]


class _TunedSlowdown:
    """Wrap a design to override its memory slowdown."""

    def __init__(self, design: UnifiedDesign, slowdown: float):
        self._design = design
        self._slowdown = slowdown

    def __getattr__(self, name):
        return getattr(self._design, name)

    @property
    def name(self) -> str:
        return self._design.name

    @property
    def memory_slowdown(self) -> float:
        return 1.0 + self._slowdown

    def memory_slowdown_for(self, benchmark: str) -> float:
        # Override the wrapped design's per-benchmark hook too, or the
        # tuned slowdown would be lost through __getattr__ delegation.
        return self.memory_slowdown


def run(method: str = "sim", config: SimConfig = SimConfig()) -> ExperimentResult:
    """Evaluate the cumulative future-work steps."""
    steps = future_designs()
    designs = [baseline_design("srvr1")]
    fast_slowdown = _cbf_dma_slowdown()
    for name, design in steps:
        if name == "N2":
            designs.append(design)
        else:
            designs.append(_TunedSlowdown(design, fast_slowdown))

    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method=method, config=config
    )
    tco = evaluation.table("Perf/TCO-$")
    watt = evaluation.table("Perf/W")
    rows = []
    data: Dict[str, float] = {}
    short_adds = {
        "N2": "(baseline unified design)",
        "N3-memfast": "+ CBF + DMA-direct remote memory",
        "N3-memlean": "+ blade sharing and compression",
        "N3-flash": "+ flash replaces the disk entirely",
    }
    for name, _ in steps:
        hmean = tco.hmean(name)
        data[name] = hmean
        rows.append(
            (name, short_adds[name], percent(hmean), percent(watt.hmean(name)))
        )
    table = format_table(
        ["Design", "Adds", "Perf/TCO-$ HMean", "Perf/W HMean"], rows
    )
    note = (
        f"remote-memory slowdown with CBF + DMA-direct: "
        f"{fast_slowdown * 100:.2f}% (vs the 2% PCIe assumption); "
        f"blade effective capacity "
        f"{effective_capacity_factor(PageSharingModel(servers=8), CompressionModel()):.2f}x "
        "physical."
    )
    return ExperimentResult(
        experiment_id="EXT-5",
        title="Future-work composition (N3)",
        paper_reference="section 4 (architectural enhancements)",
        sections={"cumulative steps": table, "note": note},
        data=data,
    )
