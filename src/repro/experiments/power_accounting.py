"""Power-accounting cross-check: is the 0.75 activity factor right?

The paper discounts nameplate power by a flat 0.75 and validates against
systems it had access to.  Here we re-derive the activity factor from
first principles: run each system at its QoS-constrained websearch and
mapreduce peaks, take the simulator's measured per-resource utilizations,
feed them through the Fan et al.-style linear power model
(:mod:`repro.costmodel.utilization_power`), and report the implied
consumed/nameplate ratio per system.
"""

from __future__ import annotations

from typing import Dict

from repro.costmodel.catalog import server_bill, system_names
from repro.costmodel.utilization_power import UtilizationPowerModel
from repro.experiments.reporting import ExperimentResult, format_table
from repro.platforms.catalog import platform
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.simulator.sweep import QosSweep
from repro.workloads.suite import make_workload

BENCHMARKS = ("websearch", "mapred-wc")


def run(config: SimConfig = SimConfig()) -> ExperimentResult:
    """Implied activity factors at measured peak operating points."""
    model = UtilizationPowerModel()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for system in system_names():
        bill = server_bill(system)
        plat = platform(system)
        factors: Dict[str, float] = {}
        for bench in BENCHMARKS:
            workload = make_workload(bench)
            if workload.profile.qos is not None:
                result = QosSweep(plat, workload, config=config).find_peak().best
            else:
                result = ServerSimulator(plat, workload, config=config).run()
            factors[bench] = model.implied_activity_factor(
                bill, result.utilization
            )
        data[system] = factors
        rows.append(
            (system,)
            + tuple(f"{factors[b]:.2f}" for b in BENCHMARKS)
        )
    table = format_table(
        ["System"] + [f"{b} peak" for b in BENCHMARKS], rows
    )
    all_factors = [f for factors in data.values() for f in factors.values()]
    note = (
        f"implied activity factors span "
        f"{min(all_factors):.2f}-{max(all_factors):.2f} at QoS-constrained "
        f"peaks; the paper's flat 0.75 sits inside the measured band, and "
        f"its 0.5-1.0 sensitivity sweep covers the whole range."
    )
    return ExperimentResult(
        experiment_id="EXT-6",
        title="Utilization-based power accounting",
        paper_reference="section 2.2 (activity factor)",
        sections={"implied activity factors": table, "note": note},
        data=data,
    )
