"""Latency-vs-load curves: why QoS caps utilization (open-loop study).

The paper measures peak RPS at fixed QoS.  The open-loop simulator shows
*why* that peak sits below the bottleneck bound: response time grows
nonlinearly with offered load, and the p95 crosses the QoS budget well
before the server saturates.  For each system we sweep the offered
websearch load from 30% to 90% of the system's analytic saturation and
report mean/p95 latency and whether QoS still holds.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.platforms.catalog import platform
from repro.simulator.analytic import AnalyticServerModel
from repro.simulator.openloop import OpenLoopSimulator
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import make_workload

SYSTEMS = ("srvr1", "desk", "emb1")
LOAD_POINTS = (0.3, 0.5, 0.7, 0.9)
BENCH = "websearch"


def run(config: SimConfig = SimConfig()) -> ExperimentResult:
    """Offered-load sweeps per system."""
    workload = make_workload(BENCH)
    sections = {}
    data: Dict[str, Dict[float, Dict[str, float]]] = {}
    qos_budget = workload.profile.qos.limit_ms

    for system in SYSTEMS:
        plat = platform(system)
        saturation = AnalyticServerModel(plat, workload).saturation_rps()
        rows = []
        data[system] = {}
        for load in LOAD_POINTS:
            rate = load * saturation
            try:
                result = OpenLoopSimulator(
                    plat, workload, arrival_rate_rps=rate, config=config
                ).run()
            except RuntimeError:
                rows.append((percent(load), f"{rate:.1f}", "--", "--", "OVERLOAD"))
                data[system][load] = {"overloaded": 1.0}
                continue
            data[system][load] = {
                "rate_rps": rate,
                "mean_ms": result.mean_response_ms,
                "p95_ms": result.qos_percentile_ms,
                "qos_met": float(result.qos_met),
            }
            rows.append(
                (
                    percent(load),
                    f"{rate:.1f}",
                    f"{result.mean_response_ms:.0f} ms",
                    f"{result.qos_percentile_ms:.0f} ms",
                    "ok" if result.qos_met else "VIOLATED",
                )
            )
        sections[f"{system} (saturation {saturation:.1f} req/s)"] = format_table(
            ["offered load", "req/s", "mean", "p95", f"QoS<{qos_budget:.0f}ms"],
            rows,
        )

    return ExperimentResult(
        experiment_id="EXT-8",
        title="Latency vs offered load (open loop)",
        paper_reference="section 2.1 (QoS methodology)",
        sections=sections,
        data=data,
    )
