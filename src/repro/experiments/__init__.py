"""Experiment modules: one per paper table/figure.

Every module exposes ``run(...) -> ExperimentResult`` which regenerates
the corresponding artifact:

========== ==========================================================
Module     Paper artifact
========== ==========================================================
table1     Table 1 -- benchmark suite summary
figure1    Figure 1(a/b) -- cost model and srvr2 TCO breakdown
table2     Table 2 -- the six system configurations
figure2    Figure 2(a/b/c) -- cost breakdowns and efficiency matrix
figure3    Figure 3 -- cooling architectures (efficiency and density)
figure4    Figure 4(b/c) -- memory-sharing slowdowns and provisioning
table3     Table 3(a/b) -- flash/disk parameters and efficiencies
figure5    Figure 5 -- unified designs N1/N2 vs srvr1 (and vs srvr2/desk)
sensitivity Activity-factor and tariff sweeps (section 2.2 robustness)
========== ==========================================================

``repro.experiments.runner`` runs any subset from the command line:
``python -m repro.experiments.runner --list``.
"""

from repro.experiments.reporting import ExperimentResult

__all__ = ["ExperimentResult"]
