"""Metastable overload and the protection stack: EXT-10.

The paper sizes its ensembles for *sustained* throughput per TCO dollar
and pushes availability "into the application stack" (section 2).  This
experiment asks what that application stack must contain by driving the
srvr1/N1/N2 clusters through a 5x traffic surge in open-loop mode (a
diurnal peak or viral spike against a cluster provisioned near the
paper's utilization targets) under two serving stacks:

- *naive*: the plain timeout-and-retry policy of the availability
  experiment's degradation stack, with unbounded server queues.  During
  the surge, queues grow past the client timeout; after it, every
  dequeued request is already stale, every timeout re-dispatches work,
  and the retry amplification keeps the cluster saturated -- goodput
  stays collapsed long after the offered load has returned to normal
  (a *metastable* failure).
- *protected*: the full :class:`repro.cluster.overload.OverloadPolicy`
  stack -- bounded queues, deadline shedding, adaptive admission
  control, a shared retry budget, per-server circuit breakers, brownout,
  and full-jitter retry backoff.  Goodput dips to the shed-controlled
  level during the surge and recovers to the pre-surge baseline within
  seconds of the surge ending.

The cost coda reprices each design's Perf/TCO-$ with the repair-adjusted
TCO of the availability experiment and the *achieved goodput* of each
serving stack: hardware choice moves the metric by tens of percent,
while an unprotected software stack zeroes it during every surge.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.cluster.capacity import (
    open_loop_rate_rps,
    per_server_capacity_rps,
    surge_queue_cap,
)
from repro.cluster.overload import OverloadPolicy, SurgeSchedule
from repro.costmodel.availability import RepairCostModel
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.availability import (
    DEGRADED_CREDIT,
    _setups,
    _TRACE_LENGTH,
)
from repro.experiments.reporting import ExperimentResult, format_table
from repro.faults.model import DEFAULT_FAULT_PROFILE
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.simulator.telemetry import TimeSeries
from repro.workloads.suite import make_workload

_WORKLOAD = "websearch"

#: The naive stack: the repository's default retry policy (1 s timeout,
#: two synchronized exponential-backoff retries) over unbounded queues.
NAIVE_RETRY = RetryPolicy()

#: The protected stack keeps the same timeout/retry budget but jitters
#: the backoff; the rest of the protection comes from
#: :class:`OverloadPolicy`'s defaults.
PROTECTED_RETRY = RetryPolicy(jitter=True)


def _recovery_ms(
    goodput: TimeSeries,
    surge_end_ms: float,
    end_ms: float,
    target_rate_rps: float,
    smooth_buckets: int = 2,
) -> Optional[float]:
    """Time from surge end until goodput first sustains the target rate.

    Scans the goodput timeline after ``surge_end_ms`` with a small
    rolling mean (``smooth_buckets`` wide) and returns the delay until
    it first reaches ``target_rate_rps``; ``None`` if it never does
    before ``end_ms`` (the metastable case).
    """
    if target_rate_rps <= 0:
        return 0.0
    bucket = goodput.bucket_ms
    values = dict(goodput.series())
    start_index = math.ceil(surge_end_ms / bucket)
    last_index = int(end_ms / bucket) - smooth_buckets
    scale = 1000.0 / bucket
    for index in range(start_index, last_index + 1):
        window = [
            values.get((index + j) * bucket, 0.0) * scale
            for j in range(smooth_buckets)
        ]
        if sum(window) / smooth_buckets >= target_rate_rps:
            return index * bucket - surge_end_ms
    return None


def run(
    servers: int = 4,
    seed: int = 3,
    load_fraction: float = 0.6,
    surge_multiplier: float = 5.0,
    warmup_ms: float = 2000.0,
    surge_start_ms: float = 6000.0,
    surge_end_ms: float = 11_000.0,
    measure_ms: float = 22_000.0,
    recovery_fraction: float = 0.95,
) -> ExperimentResult:
    """Drive each design through a traffic surge, naive vs protected.

    Each cluster is offered ``load_fraction`` of its analytic capacity,
    multiplied by ``surge_multiplier`` inside the surge window.  The
    measurement window is ``[warmup_ms, warmup_ms + measure_ms)``.
    """
    workload = make_workload(_WORKLOAD)
    repair_model = RepairCostModel(DEFAULT_FAULT_PROFILE)
    data: Dict[str, Dict[str, object]] = {}
    surge_rows = []
    activity_rows = []
    engine_rows = []
    cost_rows = []
    weighted: Dict[str, Dict[str, float]] = {}

    for setup in _setups():
        plat = setup.design.platform
        remote = None
        factory = None
        disk_model = None
        if setup.uses_remote_memory:
            remote = make_remote_memory_model(
                _WORKLOAD, local_fraction=0.25, trace_length=_TRACE_LENGTH
            )
        if setup.uses_flash:
            config = disk_configuration("remote-laptop+flash")
            factory = lambda: config.make_disk_model(_WORKLOAD)  # noqa: E731
            disk_model = config.make_disk_model(_WORKLOAD)
        capacity = per_server_capacity_rps(
            plat, workload,
            remote_memory=remote, disk_model=disk_model, servers=servers,
        )
        base_rate = open_loop_rate_rps(load_fraction, capacity, servers)
        schedule = SurgeSchedule(
            base_rate_rps=base_rate,
            surge_multiplier=surge_multiplier,
            surge_start_ms=surge_start_ms,
            surge_end_ms=surge_end_ms,
        )
        common = dict(
            platform=plat,
            workload=workload,
            servers=servers,
            clients_per_server=1,  # ignored in open-loop mode
            seed=seed,
            disk_model_factory=factory,
            remote_memory=remote,
            arrivals=schedule,
            warmup_ms=warmup_ms,
            measure_ms=measure_ms,
        )
        queue_cap = surge_queue_cap(capacity, PROTECTED_RETRY.timeout_ms)
        sims = {
            "naive": ClusterSimulator(
                retry=NAIVE_RETRY,
                overload=OverloadPolicy.unprotected(),
                engine="cohort",
                **common,
            ),
            "protected": ClusterSimulator(
                retry=PROTECTED_RETRY,
                overload=OverloadPolicy(queue_cap=queue_cap),
                engine="cohort",
                **common,
            ),
        }
        results = {mode: sim.run() for mode, sim in sims.items()}
        for mode, sim in sims.items():
            engine_rows.append(
                (
                    setup.name,
                    mode,
                    sim.engine_used,
                    sim.fallback_reason or "-",
                )
            )
        end_ms = warmup_ms + measure_ms
        design_data: Dict[str, object] = {
            "capacity_rps_per_server": capacity,
            "base_rate_rps": base_rate,
        }
        weighted[setup.name] = {}
        for mode, result in results.items():
            overload = result.overload_report
            faultrep = result.fault_report
            pre = overload.goodput.window_mean_rate_per_s(
                warmup_ms, surge_start_ms
            )
            post = overload.goodput.window_mean_rate_per_s(
                surge_end_ms + 2000.0, end_ms
            )
            # Normalize by the offered load in each window so Poisson
            # noise in the arrival stream doesn't masquerade as a
            # goodput deficit.
            pre_offered = overload.offered.window_mean_rate_per_s(
                warmup_ms, surge_start_ms
            )
            post_offered = overload.offered.window_mean_rate_per_s(
                surge_end_ms + 2000.0, end_ms
            )
            pre_fraction = pre / pre_offered if pre_offered else 0.0
            post_fraction = post / post_offered if post_offered else 0.0
            recovered = (
                post_fraction / pre_fraction if pre_fraction else 0.0
            )
            recovery = _recovery_ms(
                overload.goodput, surge_end_ms, end_ms,
                recovery_fraction * pre,
            )
            breakdown = setup.design.tco_breakdown()
            model = TcoModel(power_model=PowerModel(rack=setup.design.rack()))
            adjusted = model.availability_adjusted(
                setup.design.bill(),
                repair_model,
                setup.components,
                shared=setup.shared,
                degraded=DEGRADED_CREDIT,
            )
            metric = adjusted.availability_weighted_perf_per_tco(
                result.goodput_rps / servers
            )
            weighted[setup.name][mode] = metric
            design_data[mode] = {
                "engine_used": sims[mode].engine_used,
                "engine_fallback_reason": sims[mode].fallback_reason,
                "offered_rps": result.offered_rps,
                "throughput_rps": result.throughput_rps,
                "goodput_rps": result.goodput_rps,
                "p99_ms": result.p99_ms,
                "pre_surge_goodput_rps": pre,
                "post_surge_goodput_rps": post,
                "pre_surge_served_fraction": pre_fraction,
                "post_surge_served_fraction": post_fraction,
                "recovered_fraction": recovered,
                "recovery_ms": recovery,
                "timeouts": faultrep.timeouts,
                "retries": faultrep.retries,
                "gave_up": faultrep.gave_up,
                "total_shed": overload.total_shed,
                "shed_admission": overload.shed_admission,
                "shed_deadline": overload.shed_deadline,
                "rejected_queue_full": overload.rejected_queue_full,
                "rate_limited": overload.rate_limited,
                "breaker_opens": overload.breaker_opens,
                "breaker_rejections": overload.breaker_rejections,
                "retries_denied": overload.retries_denied,
                "brownout_requests": overload.brownout_requests,
                "tco_usd": breakdown.total_usd,
                "adjusted_tco_usd": adjusted.total_usd,
                "weighted_perf_per_tco": metric,
            }
            surge_rows.append(
                (
                    setup.name,
                    mode,
                    f"{result.offered_rps:.0f}",
                    f"{result.goodput_rps:.0f}",
                    f"{result.p99_ms:.0f} ms",
                    f"{pre:.0f}",
                    f"{post:.0f}",
                    f"{recovered:.0%}",
                    "never" if recovery is None else f"{recovery / 1000.0:.1f} s",
                )
            )
            activity_rows.append(
                (
                    setup.name,
                    mode,
                    faultrep.timeouts,
                    faultrep.retries,
                    overload.retries_denied,
                    overload.total_shed,
                    overload.breaker_opens,
                    overload.brownout_requests,
                )
            )
        data[setup.name] = design_data

    base = weighted["srvr1"]["protected"]
    for setup_name, modes in weighted.items():
        for mode, metric in modes.items():
            rel = metric / base if base else 0.0
            data[setup_name][mode]["relative_weighted_perf_per_tco"] = rel
        cost_rows.append(
            (
                setup_name,
                f"{weighted[setup_name]['naive'] / base:.2f}"
                if base else "0.00",
                f"{weighted[setup_name]['protected'] / base:.2f}"
                if base else "0.00",
            )
        )

    data["surge"] = {
        "load_fraction": load_fraction,
        "surge_multiplier": surge_multiplier,
        "surge_start_ms": surge_start_ms,
        "surge_end_ms": surge_end_ms,
        "warmup_ms": warmup_ms,
        "measure_ms": measure_ms,
        "servers": servers,
        "seed": seed,
    }

    sections = {
        f"{surge_multiplier:.0f}x surge, goodput (r/s) and recovery": format_table(
            ["Design", "stack", "offered", "goodput", "p99",
             "pre-surge", "post-surge", "recovered", "recovery"],
            surge_rows,
        ),
        "protection activity": format_table(
            ["Design", "stack", "timeouts", "retries", "denied", "shed",
             "breaker opens", "brownout"],
            activity_rows,
        ),
        "engine selection (cohort requested, scalar on fallback)": format_table(
            ["Design", "stack", "engine", "fallback reason"],
            engine_rows,
        ),
        "goodput-weighted Perf/TCO-$ (vs srvr1 protected)": format_table(
            ["Design", "naive", "protected"],
            cost_rows,
        ),
        "conclusion": (
            "an unprotected retry stack turns a transient 5x surge into "
            "a *metastable* collapse: queues outgrow the client timeout, "
            "servers burn capacity on requests whose clients have already "
            "given up, and synchronized retries hold the cluster at "
            "saturation after the surge ends -- post-surge goodput stays "
            "far below the pre-surge baseline.  Bounded queues, deadline "
            "shedding, admission control, retry budgets, circuit "
            "breakers, and brownout cap the damage during the surge and "
            "restore the baseline within seconds, which is why the "
            "goodput-weighted Perf/TCO-$ the paper optimizes is "
            "meaningful only on top of an overload-protected serving "
            "stack."
        ),
    }
    return ExperimentResult(
        experiment_id="EXT-10",
        title="Metastable overload and admission control",
        paper_reference="section 2 (application-stack availability) under surge",
        sections=sections,
        data=data,
    )
