"""Figure 4: memory-sharing slowdowns and provisioning efficiencies.

- Figure 4(b): relative slowdowns of the two-level memory hierarchy with
  random replacement at 25% (and 12.5%) local memory, for the PCIe x4
  (4 us/page) transfer and the critical-block-first optimization
  (0.75 us effective).  Paper values at 25% local / random / PCIe:
  websearch 4.7%, webmail 0.1%, ytube 1.4%, mapred-wc 0.2%,
  mapred-wr 0.7%.
- Figure 4(c): net cost and power efficiencies of static partitioning and
  dynamic provisioning (paper: static 102%/116%/108%, dynamic
  106%/116%/111% for Perf/Inf-$, Perf/W, Perf/TCO-$), evaluated on the
  emb1 deployment target with the paper's assumed 2% slowdown.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.costmodel.catalog import server_bill
from repro.costmodel.components import Component
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.memsim.provisioning import (
    DYNAMIC_PROVISIONING,
    STATIC_PARTITIONING,
    provisioned_memory_spec,
    scheme_performance_ratio,
)
from repro.memsim.trace import WORKLOAD_TRACES
from repro.memsim.twolevel import (
    CBF_PAGE_LATENCY_US,
    PCIE_X4_PAGE_LATENCY_US,
    TwoLevelMemorySimulator,
    lru_fraction_sweep,
)

#: Local-memory fractions studied by the paper.
LOCAL_FRACTIONS = (0.25, 0.125)


def slowdown_table(
    local_fraction: float,
    policy: str = "random",
    workloads: Iterable[str] | None = None,
    trace_length: int | None = None,
) -> Dict[str, Dict[str, float]]:
    """Slowdowns per workload for both transfer latencies.

    Exact-LRU entries are read off each workload's memoized miss-ratio
    curve (one trace pass answers every fraction); the Random policy has
    no stack property and keeps the scalar bracketing replay.
    """
    names = list(workloads) if workloads is not None else list(WORKLOAD_TRACES)
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        spec = WORKLOAD_TRACES[name]
        if policy == "lru":
            stats = lru_fraction_sweep(
                spec, (local_fraction,), trace_length=trace_length
            )[local_fraction]
        else:
            stats = TwoLevelMemorySimulator(
                spec, local_fraction, policy=policy
            ).run(trace_length)
        out[name] = {
            "miss_rate": stats.miss_rate,
            "pcie": spec.touches_per_ms
            * stats.miss_rate
            * (PCIE_X4_PAGE_LATENCY_US / 1000.0),
            "cbf": spec.touches_per_ms
            * stats.miss_rate
            * (CBF_PAGE_LATENCY_US / 1000.0),
        }
    return out


def provisioning_efficiencies() -> Dict[str, Dict[str, float]]:
    """Figure 4(c): system-level efficiency ratios on the emb1 target."""
    model = TcoModel()
    power_model = PowerModel()
    baseline_bill = server_bill("emb1")
    base = model.breakdown(baseline_bill)
    base_power = power_model.server_consumed_w(baseline_bill)

    out: Dict[str, Dict[str, float]] = {}
    for scheme in (STATIC_PARTITIONING, DYNAMIC_PROVISIONING):
        # The paper's uniform assumed slowdown (no workload argument).
        perf_ratio = scheme_performance_ratio(scheme)
        memory = provisioned_memory_spec(
            baseline_bill.components[Component.MEMORY], scheme
        )
        bill = baseline_bill.replace(name=f"emb1+{scheme.name}", memory=memory)
        new = model.breakdown(bill)
        new_power = power_model.server_consumed_w(bill)
        out[scheme.name] = {
            "perf_per_inf": perf_ratio * base.hardware_total_usd / new.hardware_total_usd,
            "perf_per_watt": perf_ratio * base_power / new_power,
            "perf_per_tco": perf_ratio * base.total_usd / new.total_usd,
            "total_memory_fraction": scheme.total_fraction,
        }
    return out


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Figure 4(b) and 4(c)."""
    trace_length = 120_000 if fast else None

    sections = {}
    data = {"slowdowns": {}, "provisioning": {}}
    for fraction in LOCAL_FRACTIONS:
        table = slowdown_table(fraction, policy="random", trace_length=trace_length)
        data["slowdowns"][fraction] = table
        rows = [
            (
                name,
                f"{vals['miss_rate'] * 100:.2f}%",
                f"{vals['pcie'] * 100:.1f}%",
                f"{vals['cbf'] * 100:.1f}%",
            )
            for name, vals in table.items()
        ]
        sections[f"slowdowns at {fraction * 100:.1f}% local (b)"] = format_table(
            ["Workload", "Miss rate", "PCIe x4 (4us)", "CBF (0.75us)"], rows
        )

    # LRU vs random at 25% local: the paper reports they are "nearly the
    # same"; regenerate the comparison.
    lru = slowdown_table(0.25, policy="lru", trace_length=trace_length)
    random_table = data["slowdowns"][0.25]
    rows = [
        (
            name,
            f"{random_table[name]['miss_rate'] * 100:.2f}%",
            f"{vals['miss_rate'] * 100:.2f}%",
        )
        for name, vals in lru.items()
    ]
    sections["LRU vs random miss rates at 25% local"] = format_table(
        ["Workload", "random", "LRU"], rows
    )
    data["lru"] = lru

    prov = provisioning_efficiencies()
    data["provisioning"] = prov
    rows = [
        (
            name,
            percent(vals["perf_per_inf"]),
            percent(vals["perf_per_watt"]),
            percent(vals["perf_per_tco"]),
        )
        for name, vals in prov.items()
    ]
    sections["provisioning efficiencies (c)"] = format_table(
        ["Scheme", "Perf/Inf-$", "Perf/W", "Perf/TCO-$"], rows
    )

    return ExperimentResult(
        experiment_id="E8/E9",
        title="Memory sharing architecture and results",
        paper_reference="Figure 4(b,c)",
        sections=sections,
        data=data,
    )
