"""Heterogeneous-fleet study: does one size fit all? (EXT-9)

Figure 2(c)'s efficiency matrix implies no single platform is optimal for
every service.  This experiment sizes a multi-service datacenter (equal
aggregate demand for all five benchmarks) three ways -- best homogeneous
fleet, per-service heterogeneous fleet, and a homogeneous N2 fleet -- and
reports the cost of forcing one platform everywhere.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.heterogeneous import FleetOptimizer
from repro.core.designs import baseline_design
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.platforms.catalog import platform
from repro.simulator.performance import measure_performance
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names, make_workload

SYSTEMS = ("srvr1", "srvr2", "desk", "mobl", "emb1")
#: Aggregate demand per service, in each service's own metric units
#: (requests/s for interactive, task units/s for batch).
DEMAND_PER_SERVICE = 1000.0


def run(config: SimConfig = SimConfig()) -> ExperimentResult:
    """Size homogeneous vs heterogeneous fleets for an equal service mix."""
    throughput: Dict[str, Dict[str, float]] = {}
    for bench in benchmark_names():
        workload = make_workload(bench)
        throughput[bench] = {
            system: measure_performance(
                platform(system), workload, config=config
            ).throughput_rps
            for system in SYSTEMS
        }
    tco = {
        system: baseline_design(system).tco_breakdown().total_usd
        for system in SYSTEMS
    }
    optimizer = FleetOptimizer(throughput, tco)
    demand = {bench: DEMAND_PER_SERVICE for bench in benchmark_names()}

    hetero = optimizer.heterogeneous_plan(demand)
    best_homo = optimizer.best_homogeneous_plan(demand)
    premium = optimizer.homogeneity_premium(demand)

    rows = [
        (
            a.service,
            a.platform,
            f"{a.servers:,}",
            f"${a.fleet_cost_usd:,.0f}",
            best_homo.platform_of(a.service),
        )
        for a in hetero.assignments
    ]
    placement = format_table(
        ["Service", "best platform", "servers", "fleet cost", "homogeneous pick"],
        rows,
    )

    summary_rows = [
        ("heterogeneous", f"{hetero.total_servers:,}",
         f"${hetero.total_cost_usd:,.0f}", "--"),
        (best_homo.label, f"{best_homo.total_servers:,}",
         f"${best_homo.total_cost_usd:,.0f}", percent(premium)),
    ]
    summary = format_table(
        ["Fleet", "servers", "total TCO", "premium vs mixed"], summary_rows
    )

    return ExperimentResult(
        experiment_id="EXT-9",
        title="Heterogeneous vs homogeneous fleets",
        paper_reference="Figure 2(c) implications",
        sections={"per-service placement": placement, "summary": summary},
        data={
            "heterogeneous": hetero,
            "best_homogeneous": best_homo,
            "premium": premium,
            "throughput": throughput,
        },
    )
