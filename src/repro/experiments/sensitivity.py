"""Robustness sweeps the paper reports qualitatively (section 2.2).

- Activity factor: "we also studied a range of activity factors from 0.5
  to 1.0 and our results are qualitatively similar."
- Electricity tariff: "there is a wide variation possible in the
  electricity tariff rate (from $50/MWHr to $170/MWhr)".
- Local-memory fraction: how fast does the section 3.4 paging slowdown
  grow as local memory shrinks below the paper's 25% operating point?

This experiment sweeps the knobs and reports the Perf/TCO-$ advantage of
desk and emb1 over srvr1 (harmonic mean over the suite) at each cost
setting.  Performance does not depend on the cost knobs, so one
performance matrix is reused across those sweeps; the local-fraction
sweep reads every fraction off one exact-LRU miss-ratio curve per
workload (one trace pass each; ``repro.perf.kernels``).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.metrics import harmonic_mean
from repro.costmodel.burdened import BurdenedCostParameters, BurdenedPowerCoolingModel
from repro.costmodel.catalog import server_bill
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.memsim.trace import WORKLOAD_TRACES
from repro.memsim.twolevel import (
    PCIE_X4_PAGE_LATENCY_US,
    lru_fraction_sweep,
    slowdown_fraction,
)
from repro.simulator.performance import relative_performance_matrix
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names

ACTIVITY_FACTORS = (0.5, 0.625, 0.75, 0.875, 1.0)
TARIFFS_USD_PER_MWH = (50.0, 100.0, 170.0)
COMPARED_SYSTEMS = ("desk", "emb1")
#: Local-memory fractions around the paper's 25% operating point.
LOCAL_FRACTION_SWEEP = (0.5, 0.25, 0.125, 0.0625)
#: Trace length for the memory sweep (matches the remote-memory model).
MEMORY_TRACE_LENGTH = 200_000


def _tco(
    system: str, activity_factor: float, tariff: float
) -> float:
    model = TcoModel(
        power_model=PowerModel(activity_factor=activity_factor),
        burdened_model=BurdenedPowerCoolingModel(
            parameters=BurdenedCostParameters(tariff_usd_per_mwh=tariff)
        ),
    )
    return model.total_usd(server_bill(system))


def perf_tco_advantages(
    perf_matrix: Dict[str, Dict[str, float]],
    activity_factor: float,
    tariff: float,
    systems: Sequence[str] = COMPARED_SYSTEMS,
) -> Dict[str, float]:
    """HMean Perf/TCO-$ vs srvr1 at one (activity factor, tariff) point."""
    base_tco = _tco("srvr1", activity_factor, tariff)
    out = {}
    for system in systems:
        tco = _tco(system, activity_factor, tariff)
        ratios = [
            perf_matrix[bench][system] * base_tco / tco for bench in perf_matrix
        ]
        out[system] = harmonic_mean(ratios)
    return out


def local_fraction_slowdowns(
    fractions: Sequence[float] = LOCAL_FRACTION_SWEEP,
    trace_length: int = MEMORY_TRACE_LENGTH,
) -> Dict[str, Dict[float, float]]:
    """PCIe paging slowdown per workload across local-memory fractions.

    All fractions for one workload come off a single memoized
    miss-ratio-curve pass (exact LRU, the implementable lower bracket).
    """
    out: Dict[str, Dict[float, float]] = {}
    for name, spec in WORKLOAD_TRACES.items():
        sweep = lru_fraction_sweep(spec, fractions, trace_length=trace_length)
        out[name] = {
            fraction: slowdown_fraction(
                stats.miss_rate, spec.touches_per_ms, PCIE_X4_PAGE_LATENCY_US
            )
            for fraction, stats in sweep.items()
        }
    return out


def run(method: str = "sim", config: SimConfig = SimConfig()) -> ExperimentResult:
    """Sweep activity factor and tariff; report Perf/TCO-$ advantages."""
    systems = ["srvr1", *COMPARED_SYSTEMS]
    perf = relative_performance_matrix(
        systems, benchmark_names(), method=method, config=config
    )

    sections = {}
    data: Dict[str, Dict] = {"activity": {}, "tariff": {}}

    rows = []
    for factor in ACTIVITY_FACTORS:
        adv = perf_tco_advantages(perf, factor, 100.0)
        data["activity"][factor] = adv
        rows.append([f"{factor:.3f}"] + [percent(adv[s]) for s in COMPARED_SYSTEMS])
    sections["activity-factor sweep (tariff $100/MWh)"] = format_table(
        ["Activity factor"] + [f"{s} vs srvr1" for s in COMPARED_SYSTEMS], rows
    )

    rows = []
    for tariff in TARIFFS_USD_PER_MWH:
        adv = perf_tco_advantages(perf, 0.75, tariff)
        data["tariff"][tariff] = adv
        rows.append([f"${tariff:.0f}/MWh"] + [percent(adv[s]) for s in COMPARED_SYSTEMS])
    sections["tariff sweep (activity factor 0.75)"] = format_table(
        ["Tariff"] + [f"{s} vs srvr1" for s in COMPARED_SYSTEMS], rows
    )

    memory = local_fraction_slowdowns()
    data["local_fraction"] = memory
    rows = [
        [name] + [f"{memory[name][f] * 100:.2f}%" for f in LOCAL_FRACTION_SWEEP]
        for name in memory
    ]
    sections["local-memory-fraction sweep (LRU, PCIe x4)"] = format_table(
        ["Workload"] + [f"{f * 100:g}% local" for f in LOCAL_FRACTION_SWEEP],
        rows,
    )

    return ExperimentResult(
        experiment_id="EXT-1",
        title="Activity-factor and tariff sensitivity",
        paper_reference="section 2.2 (qualitative claims)",
        sections=sections,
        data=data,
    )
