"""Table 1: summary of the warehouse-computing benchmark suite."""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, format_table
from repro.workloads.suite import BENCHMARK_SUITE


def run() -> ExperimentResult:
    """Regenerate Table 1 from the workload registry."""
    rows = []
    data = {}
    for name, factory in BENCHMARK_SUITE.items():
        workload = factory()
        profile = workload.profile
        qos = profile.qos.describe() if profile.qos else "n/a (batch)"
        rows.append(
            (
                name,
                profile.emphasizes,
                str(profile.metric_kind),
                qos,
            )
        )
        data[name] = {
            "emphasizes": profile.emphasizes,
            "metric": str(profile.metric_kind),
            "qos": qos,
            "description": profile.description,
            "mean_demand": profile.mean_demand,
        }

    table = format_table(
        ["Workload", "Emphasizes", "Perf metric", "QoS"], rows
    )
    descriptions = "\n\n".join(
        f"{name}: {info['description']}" for name, info in data.items()
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Benchmark suite for the internet sector",
        paper_reference="Table 1",
        sections={"summary": table, "descriptions": descriptions},
        data=data,
    )
