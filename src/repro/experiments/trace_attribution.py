"""Critical-path tail-latency attribution for the unified designs: EXT-11.

The availability experiment (EXT-8) shows N2's faulted p95 spiking when
the shared memory blade fails, but a percentile alone cannot say *where*
the milliseconds went -- blade reconnect waits?  retry backoff?  queueing
behind degraded peers?  This experiment re-runs the section 3.6
srvr1/N1/N2 clusters under the same accelerated fault profile and
degradation stack with per-request distributed tracing enabled
(:mod:`repro.obs`), then decomposes each design's latency percentiles
into exclusive per-component time along the critical path.

For every design the result carries a p50/p95/p99 attribution table:
each row charges 100% of the tail set's mean latency to queue, cpu, mem,
remote_mem, flash, disk, net, retry, and "other" (uninstrumented
dispatch gaps).  The per-trace decomposition sums exactly to the
end-to-end latency by construction (see
:mod:`repro.obs.critical_path`), so the shares always total 100% -- the
acceptance check asserts it.

Tracing is deterministic: the sampling decision is a pure hash of the
request sequence number, so the traced runs here produce bit-identical
:class:`~repro.cluster.balancer.ClusterResult` values to EXT-8's
untraced faulted runs, and the reported trace digests are reproducible
byte-for-byte across hosts and ``--jobs`` settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.balancer import ClusterSimulator
from repro.experiments.availability import (
    RETRY_POLICY,
    STRESS_FAULT_PROFILE,
    _TRACE_LENGTH,
    _WORKLOAD,
    _setups,
)
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.obs.critical_path import (
    COMPONENT_ORDER,
    attribute_critical_path,
    format_attribution,
)
from repro.obs.export import trace_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.perf.parallel import intra_jobs, merge_telemetry, pmap
from repro.workloads.suite import make_workload

#: Percentiles reported in every attribution table.
PERCENTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class TraceRunConfig:
    """One design's traced cluster run (picklable for ``pmap``)."""

    design: str
    servers: int = 6
    clients_per_server: int = 6
    warmup: int = 200
    measure: int = 1800
    seed: int = 1
    fault_seed: int = 7
    sample_rate: float = 1.0
    trace_seed: int = 17
    #: Inject the accelerated fault profile + degradation stack (the
    #: section 3.6 faulted configuration).  ``False`` gives a healthy
    #: run, used by the CLI's quick smoke mode.
    faults: bool = True


def run_traced_design(config: TraceRunConfig) -> dict:
    """Run one design's cluster with tracing; return the raw artifacts.

    Module-level and driven by a frozen config so ``pmap`` can fan the
    three designs across worker processes; the returned dict carries the
    tracer (span trees), the metrics registry, and the scalar cluster
    results, all picklable.
    """
    setups = {setup.name: setup for setup in _setups()}
    try:
        setup = setups[config.design]
    except KeyError as exc:
        raise KeyError(
            f"unknown design {config.design!r}; known: {sorted(setups)}"
        ) from exc

    workload = make_workload(_WORKLOAD)
    remote = None
    if setup.uses_remote_memory:
        remote = make_remote_memory_model(
            _WORKLOAD, local_fraction=0.25, trace_length=_TRACE_LENGTH
        )
    factory = None
    if setup.uses_flash:
        disk_config = disk_configuration("remote-laptop+flash")
        factory = lambda: disk_config.make_disk_model(_WORKLOAD)  # noqa: E731

    tracer = Tracer(sample_rate=config.sample_rate, seed=config.trace_seed)
    metrics = MetricsRegistry()
    kwargs = dict(
        platform=setup.design.platform,
        workload=workload,
        servers=config.servers,
        clients_per_server=config.clients_per_server,
        seed=config.seed,
        warmup_requests=config.warmup,
        measure_requests=config.measure,
        disk_model_factory=factory,
        remote_memory=remote,
        tracer=tracer,
        metrics=metrics,
    )
    if config.faults:
        kwargs.update(
            faults=STRESS_FAULT_PROFILE,
            fault_seed=config.fault_seed,
            retry=RETRY_POLICY,
            enclosure_size=setup.enclosure_size or config.servers,
        )
    result = ClusterSimulator(**kwargs).run()
    return {
        "design": config.design,
        "config": config,
        "result": result,
        "tracer": tracer,
        "metrics": metrics,
    }


def summarize(payload: dict) -> dict:
    """JSON-friendly attribution summary of one traced design run."""
    tracer = payload["tracer"]
    result = payload["result"]
    completed = tracer.completed_traces()
    attributions = attribute_critical_path(completed, percentiles=PERCENTILES)
    per_percentile: Dict[str, dict] = {}
    for attribution in attributions:
        shares = attribution.shares()
        per_percentile[f"p{attribution.percentile * 100:g}"] = {
            "latency_ms": attribution.latency_ms,
            "trace_count": attribution.trace_count,
            "mean_tail_ms": attribution.total_ms,
            "components_ms": dict(attribution.components),
            "shares": shares,
            "share_sum": sum(shares.values()),
        }
    return {
        "traces": len(tracer.traces),
        "completed_traces": len(completed),
        "truncated_traces": len(tracer.traces) - len(completed),
        "requests_seen": tracer.requests_seen,
        "trace_digest": trace_digest([(payload["design"], tracer.traces)]),
        "per_server_rps": result.per_server_rps,
        "qos_percentile_ms": result.qos_percentile_ms,
        "attribution": per_percentile,
        "attributions": attributions,
    }


def run(
    servers: int = 6,
    clients_per_server: int = 6,
    warmup: int = 200,
    measure: int = 1800,
    seed: int = 1,
    fault_seed: int = 7,
    sample_rate: float = 1.0,
    trace_seed: int = 17,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Trace the faulted srvr1/N1/N2 runs and attribute their tails."""
    configs = [
        TraceRunConfig(
            design=setup.name,
            servers=servers,
            clients_per_server=clients_per_server,
            warmup=warmup,
            measure=measure,
            seed=seed,
            fault_seed=fault_seed,
            sample_rate=sample_rate,
            trace_seed=trace_seed,
        )
        for setup in _setups()
    ]
    payloads = pmap(
        run_traced_design,
        configs,
        jobs=intra_jobs() if jobs is None else jobs,
    )

    data: Dict[str, object] = {}
    sections: Dict[str, str] = {}
    p99_rows = []
    for payload in payloads:
        name = payload["design"]
        summary = summarize(payload)
        attributions = summary.pop("attributions")
        data[name] = summary
        sections[f"critical-path attribution -- {name}"] = format_attribution(
            attributions
        )
        p99 = summary["attribution"].get("p99")
        if p99 is not None:
            shares = p99["shares"]
            p99_rows.append(
                [name, f"{p99['latency_ms']:.0f} ms"]
                + [
                    percent(shares.get(kind, 0.0))
                    for kind in COMPONENT_ORDER
                ]
            )

    if p99_rows:
        sections["p99 critical path by design"] = format_table(
            ["Design", "p99"] + list(COMPONENT_ORDER), p99_rows
        )

    # Fold the per-worker registries into one fleet-level view (the
    # lossless shard merge the ``--jobs`` path relies on): histograms
    # combine without rebinning, counters add, so the combined p99 is
    # exactly what a single shared registry would have recorded.
    combined = merge_telemetry(p["metrics"] for p in payloads)
    if combined is not None:
        response = combined.get("cluster.response_ms")
        data["combined"] = {
            "served": combined.value("cluster.requests", outcome="served"),
            "timeouts": combined.value("cluster.timeouts"),
            "retries": combined.value("cluster.retries"),
            "hedges": combined.value("cluster.hedges"),
            "response_p99_ms": (
                response.percentile_ms(0.99, default=None)
                if response is not None
                else None
            ),
        }
    sections["conclusion"] = (
        "tracing turns EXT-8's tail percentiles into a bill: srvr1's "
        "p99 is dominated by its own serving path (disk and queueing "
        "behind failed peers), while N2's tail adds the shared-blade "
        "failure domain -- remote-memory waits, degraded-swap disk "
        "time, and the retry/hedge spans the degradation stack spends "
        "routing around correlated faults.  Per-trace component times "
        "sum exactly to end-to-end latency, so every share row above "
        "totals 100%."
    )
    data["workload"] = _WORKLOAD
    data["fault_profile"] = STRESS_FAULT_PROFILE.name
    data["sample_rate"] = sample_rate
    data["trace_seed"] = trace_seed
    return ExperimentResult(
        experiment_id="EXT-11",
        title="Critical-path tail-latency attribution",
        paper_reference="section 3.6 designs under faults, traced",
        sections=sections,
        data=data,
    )
