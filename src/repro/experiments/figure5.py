"""Figure 5: cost and power efficiencies of the unified designs N1 and N2.

Per-benchmark Perf/Inf-$, Perf/W, and Perf/TCO-$ of N1 (mobile blades +
dual-entry enclosures) and N2 (embedded microblades + aggregated cooling +
memory sharing + remote flash-cached disks), relative to srvr1, plus the
harmonic mean.  Paper headline: 1.5x (N1) to 2.0x (N2) average
Perf/TCO-$, 2x-3.5x (N1) and 3.5x-6x (N2) on ytube/mapreduce, with
webmail degrading (~40% loss on N1, ~20% on N2).

Section 3.6 also compares against srvr2 and desk baselines (E13), which
``run`` reports when ``include_alternate_baselines`` is set.
"""

from __future__ import annotations

from typing import Dict

from repro.core.analysis import DesignEvaluation, evaluate_designs
from repro.core.designs import baseline_design, n1_design, n2_design
from repro.core.metrics import harmonic_mean
from repro.costmodel.realestate import DEFAULT_REAL_ESTATE
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names

#: Metric blocks reported by Figure 5.
FIGURE5_METRICS = ["Perf/Inf-$", "Perf/W", "Perf/TCO-$"]


def _tables_section(evaluation: DesignEvaluation, label: str) -> Dict[str, str]:
    sections = {}
    systems = evaluation.designs
    for metric in FIGURE5_METRICS:
        table = evaluation.table(metric)
        rows = [
            [bench] + [percent(table.cells[bench][s]) for s in systems]
            for bench in list(table.cells)
        ]
        sections[f"{metric} {label}"] = format_table([metric] + systems, rows)
    return sections


def equal_performance_comparison(evaluation: DesignEvaluation) -> Dict[str, Dict[str, float]]:
    """Section 3.6's restated result: "for the same performance as the
    baseline, N2 gets a 60% reduction in power, 55% reduction in overall
    costs, and consumes 30% less racks."

    For each design, size a fleet delivering srvr1's aggregate throughput
    (per benchmark, harmonic-mean aggregated) and compare fleet power,
    fleet TCO, fleet floor space, and rack count against the srvr1 fleet.
    """
    perf = evaluation.table("Perf")
    out: Dict[str, Dict[str, float]] = {}
    base_metrics = next(iter(evaluation.metrics.values()))["srvr1"]
    designs = {d: None for d in evaluation.designs if d != "srvr1"}
    from repro.core.designs import n1_design, n2_design  # local: avoid cycle

    design_objects = {"N1": n1_design(), "N2": n2_design()}
    for name in designs:
        design = design_objects.get(name)
        if design is None:
            continue
        servers_needed = harmonic_mean(
            [1.0 / perf.value(bench, name) for bench in perf.benchmarks]
        )
        # Per-server cost/power of the design (same for all benchmarks).
        metrics = next(iter(evaluation.metrics.values()))[name]
        power_ratio = servers_needed * metrics.power_w / base_metrics.power_w
        cost_ratio = servers_needed * metrics.tco_usd / base_metrics.tco_usd
        rack_density = design.rack().servers_per_rack
        # Floor space scales with rack count, so racks_ratio covers both.
        racks_ratio = (servers_needed / rack_density) / (1.0 / 40.0)
        out[name] = {
            "servers_per_srvr1": servers_needed,
            "power_reduction": 1.0 - power_ratio,
            "cost_reduction": 1.0 - cost_ratio,
            "racks_reduction": 1.0 - racks_ratio,
            "floor_cost_per_srvr1_usd": (
                servers_needed * DEFAULT_REAL_ESTATE.cost_per_rack_usd / rack_density
            ),
        }
    return out


def run(
    method: str = "sim",
    config: SimConfig = SimConfig(),
    include_alternate_baselines: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 5 (and the section 3.6 alternate-baseline text)."""
    designs = [baseline_design("srvr1"), n1_design(), n2_design()]
    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method=method, config=config
    )
    sections = _tables_section(evaluation, "(vs srvr1)")
    data = {"vs_srvr1": evaluation.tables, "metrics": evaluation.metrics}

    equal_perf = equal_performance_comparison(evaluation)
    data["equal_performance"] = equal_perf
    rows = [
        (
            name,
            f"{vals['servers_per_srvr1']:.1f}",
            percent(vals["power_reduction"]),
            percent(vals["cost_reduction"]),
            percent(vals["racks_reduction"]),
        )
        for name, vals in equal_perf.items()
    ]
    sections["equal-performance fleets (section 3.6)"] = format_table(
        ["Design", "servers/srvr1", "power saved", "cost saved", "racks saved"],
        rows,
    )

    if include_alternate_baselines:
        for base_name in ("srvr2", "desk"):
            alt = evaluate_designs(
                [baseline_design(base_name), n1_design(), n2_design()],
                benchmark_names(),
                baseline=base_name,
                method=method,
                config=config,
            )
            tco = alt.table("Perf/TCO-$")
            rows = [
                [bench] + [percent(tco.cells[bench][s]) for s in alt.designs]
                for bench in list(tco.cells)
            ]
            sections[f"Perf/TCO-$ (vs {base_name})"] = format_table(
                ["Perf/TCO-$"] + alt.designs, rows
            )
            data[f"vs_{base_name}"] = alt.tables

    return ExperimentResult(
        experiment_id="E12/E13",
        title="Unified designs N1 and N2",
        paper_reference="Figure 5",
        sections=sections,
        data=data,
    )
