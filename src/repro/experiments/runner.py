"""Run experiments from the command line.

Examples::

    repro-experiments --list
    repro-experiments figure1 table2
    repro-experiments --all --method analytic
    repro-experiments --all --jobs 4
    repro-experiments --all --no-cache
    python -m repro.experiments.runner figure5

``--jobs N`` fans experiments (and the design grids inside a single
experiment) across N worker processes; results are merged in request
order and are bit-identical to a serial run.  Results are cached in
``.repro-cache/`` keyed on experiment, parameters, and a source-code
fingerprint -- edit any file under ``src/repro`` and the cache
invalidates itself; ``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict

from repro.experiments import (
    ablation,
    availability,
    blade_contention,
    diurnal,
    failslow,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    future,
    heterogeneous,
    latency_load,
    overload,
    power_accounting,
    redundancy,
    scaleout,
    sensitivity,
    table1,
    table2,
    table3,
    trace_attribution,
    validation,
)
from repro.experiments.reporting import ExperimentResult
from repro.perf.cache import ResultCache
from repro.perf.parallel import default_jobs, run_experiments, set_intra_jobs

#: name -> (factory accepting **kwargs, supports-method-kwarg)
_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "figure1": figure1.run,
    "table2": table2.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "table3": table3.run,
    "figure5": figure5.run,
    "sensitivity": sensitivity.run,
    "ablation": ablation.run,
    "scaleout": scaleout.run,
    "diurnal": diurnal.run,
    "validation": validation.run,
    "future": future.run,
    "power": power_accounting.run,
    "contention": blade_contention.run,
    "latency": latency_load.run,
    "heterogeneous": heterogeneous.run,
    "availability": availability.run,
    "overload": overload.run,
    "trace_attribution": trace_attribution.run,
    "failslow": failslow.run,
    "redundancy": redundancy.run,
}

#: Experiments that accept a ``method`` keyword (DES vs analytic).
_METHOD_AWARE = {"figure2", "table3", "figure5", "sensitivity", "ablation", "future"}

#: Relative single-run cost of each experiment (measured wall-clock
#: seconds, default scale) -- a *scheduling hint only*, never touching
#: results: ``--jobs N`` submits cache misses longest-first (LPT), so a
#: long experiment starts immediately instead of landing on a nearly
#: drained pool and stretching the sweep by its full duration.  Stale
#: entries cost nothing but scheduling efficiency; unlisted experiments
#: default to a middling weight.
_COST_HINTS: Dict[str, float] = {
    "validation": 19.9,
    "figure5": 13.3,
    "figure2": 11.2,
    "ablation": 10.7,
    "table3": 8.8,
    "failslow": 8.6,
    "overload": 8.3,
    "future": 8.2,
    "redundancy": 5.0,
    "figure4": 4.7,
    "sensitivity": 3.1,
    "contention": 2.7,
    "trace_attribution": 2.3,
    "power": 2.3,
    "scaleout": 1.7,
    "availability": 1.7,
    "heterogeneous": 1.4,
    "latency": 1.4,
    "table1": 0.9,
    "figure1": 0.1,
    "table2": 0.1,
    "figure3": 0.1,
    "diurnal": 0.1,
}


def run_experiment(name: str, method: str = "sim", **overrides) -> ExperimentResult:
    """Run one experiment by name.

    ``overrides`` are forwarded to the experiment's ``run()`` (tests use
    them to shrink workloads; see each experiment for its parameters).
    """
    try:
        factory = _EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(_EXPERIMENTS)}"
        ) from exc
    if name in _METHOD_AWARE:
        return factory(method=method, **overrides)
    return factory(**overrides)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment names")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--method",
        choices=["sim", "analytic"],
        default="sim",
        help="performance model: discrete-event simulation or analytic MVA",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered results to FILE",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment fan-out (0 = one per core; "
        "results are identical to --jobs 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything, ignoring the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result-cache directory (default .repro-cache/, or "
        "$REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in _EXPERIMENTS:
            print(name)
        return 0

    names = list(_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    # A single experiment cannot fan out at the experiment level, so let
    # its internal design/benchmark grids use the same job budget (the
    # two levels never nest: workers always run serially).
    set_intra_jobs(jobs)
    cache = (
        None
        if args.no_cache
        else ResultCache(Path(args.cache_dir) if args.cache_dir else None)
    )

    rendered = []
    for _, result in run_experiments(
        names, method=args.method, jobs=jobs, cache=cache
    ):
        text = result.render()
        print(text)
        print()
        rendered.append(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(rendered) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
