"""Full paper-vs-measured validation report (the EXPERIMENTS.md data).

Regenerates the performance matrix, Perf/TCO-$ matrix, memory-sharing
slowdowns, disk-configuration efficiencies, and the N1/N2 results, then
diffs every cell against the paper's published values
(:mod:`repro.validation.reference`).
"""

from __future__ import annotations

from typing import Dict

from repro.core.analysis import evaluate_designs
from repro.core.designs import baseline_design, n1_design, n2_design
from repro.experiments.figure4 import slowdown_table
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table3 import configuration_efficiencies
from repro.simulator.server_sim import SimConfig
from repro.validation.compare import compare_matrix, render_comparison, summarize
from repro.validation.reference import (
    PAPER_FIGURE2C_PERF,
    PAPER_FIGURE2C_PERF_INF,
    PAPER_FIGURE2C_PERF_TCO,
    PAPER_FIGURE2C_PERF_W,
    PAPER_FIGURE4B_PCIE,
    PAPER_FIGURE5_TCO,
    PAPER_TABLE3B,
)

_SYSTEMS = ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"]
_BENCHES = ["websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"]


def run(config: SimConfig = SimConfig()) -> ExperimentResult:
    """Produce the complete per-cell validation report."""
    sections: Dict[str, str] = {}
    data: Dict[str, object] = {}

    # Figure 2(c) Perf and Perf/TCO-$ blocks.
    designs = [baseline_design(name) for name in _SYSTEMS]
    evaluation = evaluate_designs(
        designs, _BENCHES, baseline="srvr1", method="sim", config=config
    )
    perf_cells = evaluation.table("Perf").cells
    deltas = compare_matrix(PAPER_FIGURE2C_PERF, perf_cells)
    sections["Figure 2(c) Perf"] = render_comparison(deltas)
    data["figure2c_perf"] = deltas

    tco_cells = evaluation.table("Perf/TCO-$").cells
    deltas = compare_matrix(PAPER_FIGURE2C_PERF_TCO, tco_cells)
    sections["Figure 2(c) Perf/TCO-$"] = render_comparison(deltas, band=0.5)
    data["figure2c_tco"] = deltas

    deltas = compare_matrix(
        PAPER_FIGURE2C_PERF_INF, evaluation.table("Perf/Inf-$").cells
    )
    sections["Figure 2(c) Perf/Inf-$"] = render_comparison(deltas, band=0.5)
    data["figure2c_inf"] = deltas

    deltas = compare_matrix(
        PAPER_FIGURE2C_PERF_W, evaluation.table("Perf/W").cells
    )
    sections["Figure 2(c) Perf/W"] = render_comparison(deltas, band=0.5)
    data["figure2c_w"] = deltas

    # Figure 4(b) PCIe slowdowns.
    slowdowns = slowdown_table(0.25)
    measured = {"pcie": {name: v["pcie"] for name, v in slowdowns.items()}}
    deltas = compare_matrix({"pcie": PAPER_FIGURE4B_PCIE}, measured)
    sections["Figure 4(b) PCIe slowdowns"] = render_comparison(deltas, band=0.012)
    data["figure4b"] = deltas

    # Table 3(b).
    efficiencies = configuration_efficiencies(method="sim", config=config)
    deltas = compare_matrix(PAPER_TABLE3B, efficiencies)
    sections["Table 3(b)"] = render_comparison(deltas, band=0.10)
    data["table3b"] = deltas

    # Figure 5.
    n_eval = evaluate_designs(
        [baseline_design("srvr1"), n1_design(), n2_design()],
        _BENCHES,
        baseline="srvr1",
        method="sim",
        config=config,
    )
    deltas = compare_matrix(PAPER_FIGURE5_TCO, n_eval.table("Perf/TCO-$").cells)
    sections["Figure 5 Perf/TCO-$"] = render_comparison(deltas, band=0.6)
    data["figure5"] = deltas

    all_deltas = [d for block in data.values() for d in block]  # type: ignore[union-attr]
    sections["overall"] = summarize(all_deltas, band=0.25)

    return ExperimentResult(
        experiment_id="VAL-1",
        title="Paper-vs-measured validation report",
        paper_reference="all evaluation artifacts",
        sections=sections,
        data=data,
    )
