"""Tests of the closed-loop server simulator."""

import pytest

from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def config():
    return SimConfig(warmup_requests=100, measure_requests=600, seed=5)


class TestServerSimulator:
    def test_produces_positive_throughput(self, srvr1, config):
        result = ServerSimulator(srvr1, make_workload("websearch"),
                                 population=16, config=config).run()
        assert result.throughput_rps > 0
        assert result.mean_response_ms > 0
        assert result.measured_requests == 600

    def test_deterministic_for_same_seed(self, emb1, config):
        runs = [
            ServerSimulator(emb1, make_workload("webmail"),
                            population=8, config=config).run()
            for _ in range(2)
        ]
        assert runs[0].throughput_rps == runs[1].throughput_rps
        assert runs[0].qos_percentile_ms == runs[1].qos_percentile_ms

    def test_different_seeds_differ(self, emb1):
        results = [
            ServerSimulator(
                emb1,
                make_workload("webmail"),
                population=8,
                config=SimConfig(warmup_requests=100, measure_requests=600, seed=s),
            ).run()
            for s in (1, 2)
        ]
        assert results[0].throughput_rps != results[1].throughput_rps

    def test_throughput_grows_then_saturates_with_population(self, emb1, config):
        workload = make_workload("websearch")
        x = {
            n: ServerSimulator(emb1, workload, population=n, config=config)
            .run()
            .throughput_rps
            for n in (2, 8, 64, 128)
        }
        assert x[8] > x[2]
        assert x[64] > x[8]
        # Saturation: doubling again buys little.
        assert x[128] < 1.15 * x[64]

    def test_latency_grows_with_population(self, emb1, config):
        workload = make_workload("websearch")
        r_small = ServerSimulator(emb1, workload, population=2, config=config).run()
        r_big = ServerSimulator(emb1, workload, population=64, config=config).run()
        assert r_big.mean_response_ms > r_small.mean_response_ms

    def test_memory_slowdown_reduces_throughput(self, emb1, config):
        workload = make_workload("mapred-wc")
        base = ServerSimulator(emb1, workload, config=config).run()
        slowed = ServerSimulator(
            emb1, workload, config=config, memory_slowdown=1.5
        ).run()
        assert slowed.throughput_rps < base.throughput_rps

    def test_default_population_from_policy(self, emb1):
        sim = ServerSimulator(emb1, make_workload("mapred-wc"))
        assert sim.population == 4 * emb1.cpu.total_cores

    def test_utilizations_are_fractions(self, srvr1, config):
        result = ServerSimulator(srvr1, make_workload("ytube"),
                                 population=100, config=config).run()
        for name, u in result.utilization.items():
            assert 0.0 <= u <= 1.0, name

    def test_faster_platform_higher_throughput(self, srvr1, emb1, config):
        workload = make_workload("webmail")
        fast = ServerSimulator(srvr1, workload, population=64, config=config).run()
        slow = ServerSimulator(emb1, workload, population=64, config=config).run()
        assert fast.throughput_rps > slow.throughput_rps

    def test_invalid_arguments(self, srvr1):
        with pytest.raises(ValueError):
            ServerSimulator(srvr1, make_workload("ytube"), population=0)
        with pytest.raises(ValueError):
            ServerSimulator(srvr1, make_workload("ytube"), memory_slowdown=0.5)
        with pytest.raises(ValueError):
            SimConfig(measure_requests=0)

    def test_describe_mentions_qos_violation(self, emb1, config):
        result = ServerSimulator(emb1, make_workload("websearch"),
                                 population=256, config=config).run()
        assert not result.qos_met
        assert "QoS violated" in result.describe()
