"""Tests of the discrete-event engine."""

import pytest

from repro.simulator.engine import Simulation


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulation()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(3.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_times(self):
        sim = Simulation()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.schedule(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5, 7.0]

    def test_nested_scheduling_is_relative_to_now(self):
        sim = Simulation()
        seen = []

        def first():
            sim.schedule(3.0, lambda: seen.append(sim.now))

        sim.schedule(2.0, first)
        sim.run()
        assert seen == [5.0]

    def test_stop_halts_processing(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.pending_events == 1

    def test_run_until_leaves_future_events(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(2))
        sim.run(until_ms=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_round_off_negative_delay_clamps_to_now(self):
        # An absolute target computed as t - now can land one ulp in the
        # past; that must run immediately, not raise.
        sim = Simulation()
        seen = []
        sim.schedule(0.1 + 0.2, lambda: sim.schedule_at(0.3, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [pytest.approx(0.3)]

    def test_schedule_at_tiny_past_target_clamps(self):
        sim = Simulation()
        seen = []
        sim.schedule(
            1.0, lambda: sim.schedule_at(sim.now - 1e-10, lambda: seen.append(sim.now))
        )
        sim.run()
        assert len(seen) == 1

    def test_genuinely_past_target_still_rejected(self):
        sim = Simulation()

        def late():
            with pytest.raises(ValueError):
                sim.schedule_at(sim.now - 1.0, lambda: None)

        sim.schedule(5.0, late)
        sim.run()


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulation()
        seen = []
        timer = sim.schedule_timer(5.0, lambda: seen.append("timer"))
        sim.schedule(1.0, lambda: sim.cancel(timer))
        sim.run()
        assert seen == []

    def test_cancel_is_lazy_then_compacts(self):
        sim = Simulation()
        fired = []
        timers = [
            sim.schedule_timer(100.0 + i, lambda i=i: fired.append(i))
            for i in range(10)
        ]
        sim.schedule(50.0, lambda: fired.append("live"))
        # Below the compaction threshold the entries stay queued...
        sim.cancel(timers[0])
        assert sim.pending_events == 11
        # ...cancelling a majority sweeps the heap in place (at most one
        # not-yet-reclaimed entry can remain below the threshold).
        for timer in timers[1:]:
            sim.cancel(timer)
        assert sim.pending_events <= 2
        sim.run()
        assert fired == ["live"]

    def test_cancel_after_fire_is_noop(self):
        sim = Simulation()
        seen = []
        timer = sim.schedule_timer(1.0, lambda: seen.append("t"))
        sim.run()
        sim.cancel(timer)  # stale handle: harmless
        sim.schedule(1.0, lambda: seen.append("after"))
        sim.run()
        assert seen == ["t", "after"]

    def test_cancelled_and_live_interleaved_order_preserved(self):
        sim = Simulation()
        order = []
        for i in range(20):
            sim.schedule(float(i), lambda i=i: order.append(i))
        dead = [sim.schedule_timer(float(i) + 0.5, lambda: order.append("x"))
                for i in range(20)]
        for timer in dead:
            sim.cancel(timer)
        sim.run()
        assert order == list(range(20))


class TestScheduleBatch:
    def test_batch_matches_repeated_schedule(self):
        batched, looped = Simulation(), Simulation()
        got_a, got_b = [], []
        pairs = [(3.0, lambda: got_a.append("late")),
                 (1.0, lambda: got_a.append("early")),
                 (3.0, lambda: got_a.append("late2"))]
        batched.schedule_batch(pairs)
        looped.schedule(3.0, lambda: got_b.append("late"))
        looped.schedule(1.0, lambda: got_b.append("early"))
        looped.schedule(3.0, lambda: got_b.append("late2"))
        batched.run()
        looped.run()
        assert got_a == got_b == ["early", "late", "late2"]

    def test_batch_into_nonempty_heap(self):
        sim = Simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("pre"))
        sim.schedule_batch([(1.0, lambda: order.append("batch1")),
                            (3.0, lambda: order.append("batch3"))])
        sim.run()
        assert order == ["batch1", "pre", "batch3"]

    def test_batch_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule_batch([(-1.0, lambda: None)])

    def test_small_batch_into_large_heap_preserves_order(self):
        """The staged-batch heuristic: a small batch landing in a big
        heap must push per-entry (no whole-heap heapify) and still
        interleave correctly with existing events."""
        sim = Simulation()
        order = []
        for i in range(200):
            sim.schedule(float(2 * i + 1), lambda i=i: order.append(("pre", i)))
        sim.schedule_batch([
            (100.5, lambda: order.append(("batch", 0))),
            (0.5, lambda: order.append(("batch", 1))),
        ])
        sim.run()
        assert len(order) == 202
        assert order[0] == ("batch", 1)
        assert order.index(("batch", 0)) == 51  # after pre 0..49 (odd times 1..99)

    def test_large_batch_heapifies_and_matches_serial(self):
        batched, looped = Simulation(), Simulation()
        got_a, got_b = [], []
        delays = [float((i * 37) % 100) for i in range(500)]
        batched.schedule_batch(
            [(d, lambda d=d: got_a.append(d)) for d in delays]
        )
        for d in delays:
            looped.schedule(d, lambda d=d: got_b.append(d))
        batched.run()
        looped.run()
        assert got_a == got_b == sorted(delays)


class TestCohortSimulation:
    def test_same_time_same_kind_events_merge_into_one_dispatch(self):
        from repro.simulator.engine import CohortSimulation

        sim = CohortSimulation()
        calls = []
        sim.set_cohort_handler(lambda kind, payloads: calls.append((kind, list(payloads))))
        for payload in ("a", "b", "c"):
            sim.schedule_cohort(5.0, "arrivals", payload)
        sim.schedule_cohort(5.0, "completions", "z")
        sim.run()
        assert calls == [("arrivals", ["a", "b", "c"]), ("completions", ["z"])]

    def test_different_times_stay_separate(self):
        from repro.simulator.engine import CohortSimulation

        sim = CohortSimulation()
        calls = []
        sim.set_cohort_handler(lambda kind, payloads: calls.append((sim.now, kind, len(payloads))))
        sim.schedule_cohort(1.0, "tick", None)
        sim.schedule_cohort(2.0, "tick", None)
        sim.schedule_cohort(2.0, "tick", None)
        sim.run()
        assert calls == [(1.0, "tick", 1), (2.0, "tick", 2)]

    def test_handler_may_schedule_followup_cohorts(self):
        from repro.simulator.engine import CohortSimulation

        sim = CohortSimulation()
        seen = []

        def handle(kind, payloads):
            seen.append((kind, len(payloads)))
            if kind == "arrivals":
                sim.schedule_cohort(0.0, "completions", sum(payloads))

        sim.set_cohort_handler(handle)
        sim.schedule_cohort(1.0, "arrivals", 2)
        sim.schedule_cohort(1.0, "arrivals", 3)
        sim.run()
        assert seen == [("arrivals", 2), ("completions", 1)]

    def test_cancel_removes_cohort_entry(self):
        from repro.simulator.engine import CohortSimulation

        sim = CohortSimulation()
        calls = []
        sim.set_cohort_handler(lambda kind, payloads: calls.append(kind))
        keep = sim.schedule_cohort(1.0, "keep", None)
        drop = sim.schedule_cohort(1.0, "drop", None)
        assert keep != drop
        sim.cancel(drop)
        sim.run()
        assert calls == ["keep"]

    def test_requires_handler(self):
        from repro.simulator.engine import CohortSimulation

        sim = CohortSimulation()
        sim.schedule_cohort(1.0, "tick", None)
        with pytest.raises(RuntimeError, match="handler"):
            sim.run()
