"""Tests of the discrete-event engine."""

import pytest

from repro.simulator.engine import Simulation


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulation()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(3.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_times(self):
        sim = Simulation()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.schedule(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5, 7.0]

    def test_nested_scheduling_is_relative_to_now(self):
        sim = Simulation()
        seen = []

        def first():
            sim.schedule(3.0, lambda: seen.append(sim.now))

        sim.schedule(2.0, first)
        sim.run()
        assert seen == [5.0]

    def test_stop_halts_processing(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.pending_events == 1

    def test_run_until_leaves_future_events(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(2))
        sim.run(until_ms=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
