"""Tests of the adaptive QoS client driver."""

import pytest

from repro.platforms.catalog import platform
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.simulator.sweep import QosSweep
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def config():
    return SimConfig(warmup_requests=100, measure_requests=700, seed=9)


class TestQosSweep:
    def test_peak_meets_qos(self, config):
        result = QosSweep(platform("srvr2"), make_workload("websearch"),
                          config=config).find_peak()
        assert result.qos_met
        assert result.throughput_rps > 0

    def test_peak_is_near_qos_boundary(self, config):
        """Pushing well past the found population should violate QoS."""
        plat = platform("srvr2")
        workload = make_workload("websearch")
        result = QosSweep(plat, workload, config=config).find_peak()
        beyond = ServerSimulator(
            plat, workload, population=result.population * 3, config=config
        ).run()
        assert not beyond.qos_met

    def test_degraded_mode_when_qos_unattainable(self, config):
        """emb2 webmail: one request's service time already busts the
        budget; the driver reports single-client throughput."""
        result = QosSweep(platform("emb2"), make_workload("webmail"),
                          config=config).find_peak()
        assert not result.qos_met
        assert result.population == 1
        assert result.throughput_rps > 0

    def test_population_cap_respected(self, config):
        """ytube's connection cap bounds the sweep."""
        workload = make_workload("ytube")
        result = QosSweep(platform("srvr1"), workload, config=config).find_peak()
        assert result.population <= workload.profile.max_population

    def test_caches_simulations(self, config):
        sweep = QosSweep(platform("desk"), make_workload("webmail"), config=config)
        result = sweep.find_peak()
        assert result.evaluations >= 1
        # Re-running is free (cache) and deterministic.
        again = sweep.find_peak()
        assert again.throughput_rps == result.throughput_rps

    def test_faster_platform_achieves_higher_peak(self, config):
        workload_name = "websearch"
        peaks = {}
        for name in ("srvr1", "emb1"):
            peaks[name] = QosSweep(
                platform(name), make_workload(workload_name), config=config
            ).find_peak().throughput_rps
        assert peaks["srvr1"] > 2 * peaks["emb1"]
