"""Tests (incl. property-based) of the telemetry accumulators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.telemetry import (
    AvailabilityTracker,
    LatencyHistogram,
    TimeSeries,
)


class TestLatencyHistogram:
    def test_counts_and_mean(self):
        hist = LatencyHistogram()
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.count == 3
        assert hist.mean_ms == pytest.approx(2.0)
        assert hist.max_ms == 3.0

    def test_percentile_within_bucket_error(self):
        hist = LatencyHistogram(growth=1.1)
        rng = random.Random(1)
        values = [rng.expovariate(1.0 / 50.0) for _ in range(20_000)]
        for v in values:
            hist.record(v)
        values.sort()
        exact_p95 = values[int(0.95 * len(values))]
        assert hist.percentile_ms(0.95) == pytest.approx(exact_p95, rel=0.12)

    def test_percentile_never_exceeds_max(self):
        hist = LatencyHistogram()
        hist.record(42.0)
        assert hist.percentile_ms(1.0) <= 42.0 + 1e-9

    def test_nonzero_buckets_cover_all_samples(self):
        hist = LatencyHistogram()
        for v in (0.001, 5.0, 5.1, 1e7):  # includes under/overflow values
            hist.record(v)
        assert sum(c for _, _, c in hist.nonzero_buckets()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value_ms=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)
        with pytest.raises(ValueError):
            hist.percentile_ms(0.5)  # empty
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile_ms(1.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=500
        ),
        percentile=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentile_bounds_the_right_mass(self, values, percentile):
        hist = LatencyHistogram()
        for v in values:
            hist.record(v)
        answer = hist.percentile_ms(percentile)
        at_or_below = sum(1 for v in values if v <= answer + 1e-12)
        assert at_or_below / len(values) >= percentile - 1e-9


class TestTimeSeries:
    def test_buckets_accumulate(self):
        series = TimeSeries(bucket_ms=100.0)
        series.record(10.0)
        series.record(90.0)
        series.record(150.0, value=2.0)
        assert series.series() == [(0.0, 2.0), (100.0, 2.0)]

    def test_gaps_filled_with_zero(self):
        series = TimeSeries(bucket_ms=10.0)
        series.record(5.0)
        series.record(35.0)
        assert series.series() == [(0.0, 1.0), (10.0, 0.0), (20.0, 0.0), (30.0, 1.0)]

    def test_rate_per_second(self):
        series = TimeSeries(bucket_ms=500.0)
        for t in (0.0, 100.0, 400.0):
            series.record(t)
        assert series.rate_per_second() == [(0.0, 6.0)]

    def test_empty_series(self):
        assert TimeSeries(bucket_ms=10.0).series() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(bucket_ms=0.0)
        with pytest.raises(ValueError):
            TimeSeries(bucket_ms=10.0).record(-1.0)


class TestAvailabilityTracker:
    def test_downtime_and_availability(self):
        tracker = AvailabilityTracker()
        tracker.observe("s0", 0.0, up=True)
        tracker.observe("s0", 600.0, up=False)
        tracker.observe("s0", 800.0, up=True)
        tracker.finalize(1000.0)
        entity = tracker.entity("s0")
        assert entity.downtime_ms == pytest.approx(200.0)
        assert entity.observed_ms == pytest.approx(1000.0)
        assert entity.availability == pytest.approx(0.8)
        assert entity.incidents == 1

    def test_repeated_observations_are_idempotent(self):
        tracker = AvailabilityTracker()
        tracker.observe("s0", 0.0, up=True)
        tracker.observe("s0", 100.0, up=True)
        tracker.observe("s0", 200.0, up=False)
        tracker.observe("s0", 300.0, up=False)
        tracker.observe("s0", 400.0, up=True)
        tracker.finalize(500.0)
        entity = tracker.entity("s0")
        assert entity.incidents == 1
        assert entity.downtime_ms == pytest.approx(200.0)

    def test_finalize_closes_open_downtime(self):
        tracker = AvailabilityTracker()
        tracker.observe("s0", 0.0, up=True)
        tracker.observe("s0", 900.0, up=False)
        tracker.finalize(1000.0)
        assert tracker.entity("s0").downtime_ms == pytest.approx(100.0)

    def test_never_down_entity_is_fully_available(self):
        tracker = AvailabilityTracker()
        tracker.observe("s0", 0.0, up=True)
        tracker.finalize(1000.0)
        entity = tracker.entity("s0")
        assert entity.availability == 1.0
        assert entity.incidents == 0

    def test_mean_availability_with_prefix(self):
        tracker = AvailabilityTracker()
        tracker.observe("rotation/s0", 0.0, up=True)
        tracker.observe("rotation/s1", 0.0, up=True)
        tracker.observe("rotation/s1", 500.0, up=False)
        tracker.observe("hw/blade", 0.0, up=False)
        tracker.finalize(1000.0)
        assert tracker.mean_availability("rotation/") == pytest.approx(0.75)
        assert tracker.mean_availability("nothing/") == 1.0

    def test_validation(self):
        tracker = AvailabilityTracker()
        with pytest.raises(ValueError):
            tracker.observe("s0", -1.0, up=True)
        tracker.observe("s0", 100.0, up=True)
        with pytest.raises(ValueError, match="time-ordered"):
            tracker.observe("s0", 50.0, up=False)
        with pytest.raises(ValueError, match="end time"):
            tracker.finalize(50.0)
        with pytest.raises(KeyError):
            tracker.entity("unknown")


class TestLatencyHistogramMerge:
    def test_merge_is_lossless(self):
        rng = random.Random(4)
        values = [rng.expovariate(1 / 50.0) for _ in range(400)]
        reference, left, right = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for index, value in enumerate(values):
            reference.record(value)
            (left if index % 2 else right).record(value)
        merged = left.merge(right)
        assert merged is left
        assert merged.count == reference.count
        assert merged.mean_ms == pytest.approx(reference.mean_ms)
        assert merged.max_ms == reference.max_ms
        for percentile in (0.5, 0.9, 0.99, 1.0):
            assert merged.percentile_ms(percentile) == (
                reference.percentile_ms(percentile)
            )

    def test_merge_with_empty_is_identity(self):
        hist = LatencyHistogram()
        hist.record(5.0)
        hist.merge(LatencyHistogram())
        assert hist.count == 1
        assert hist.percentile_ms(1.0) == 5.0

    def test_mismatched_bucket_configuration_raises(self):
        with pytest.raises(ValueError, match="bucket configurations"):
            LatencyHistogram().merge(LatencyHistogram(growth=1.3))
        with pytest.raises(ValueError, match="bucket configurations"):
            LatencyHistogram().merge(LatencyHistogram(min_value_ms=0.1))

    def test_merge_rejects_other_types(self):
        with pytest.raises(TypeError):
            LatencyHistogram().merge(TimeSeries(bucket_ms=100.0))


class TestPercentileDefault:
    def test_empty_histogram_raises_without_default(self):
        with pytest.raises(ValueError, match="empty"):
            LatencyHistogram().percentile_ms(0.99)

    def test_default_is_the_escape_hatch(self):
        assert LatencyHistogram().percentile_ms(0.99, default=None) is None
        assert LatencyHistogram().percentile_ms(0.99, default=0.0) == 0.0

    def test_default_is_ignored_when_populated(self):
        hist = LatencyHistogram()
        hist.record(10.0)
        assert hist.percentile_ms(0.99, default=None) is not None

    def test_invalid_percentile_still_raises_with_default(self):
        with pytest.raises(ValueError, match="percentile"):
            LatencyHistogram().percentile_ms(2.0, default=None)


class TestTimeSeriesMerge:
    def test_merge_adds_bucket_values(self):
        left, right, reference = (
            TimeSeries(bucket_ms=100.0),
            TimeSeries(bucket_ms=100.0),
            TimeSeries(bucket_ms=100.0),
        )
        for series in (left, reference):
            series.record(50.0, 2.0)
        for series in (right, reference):
            series.record(150.0, 1.0)
            series.record(60.0, 3.0)
        assert left.merge(right) is left
        assert left == reference

    def test_mismatched_bucket_width_raises(self):
        with pytest.raises(ValueError, match="bucket widths"):
            TimeSeries(bucket_ms=100.0).merge(TimeSeries(bucket_ms=50.0))

    def test_merge_rejects_other_types(self):
        with pytest.raises(TypeError):
            TimeSeries(bucket_ms=100.0).merge(LatencyHistogram())


class TestPercentileSince:
    """The allocation-free windowed percentile must equal the reference
    path (materialize the window with since(), then percentile_ms)."""

    def test_matches_since_then_percentile(self):
        hist = LatencyHistogram()
        for value in (1.0, 5.0, 9.0):
            hist.record(value)
        snap = hist.snapshot()
        for value in (2.0, 40.0, 40.0, 400.0, 0.3):
            hist.record(value)
        for percentile in (0.05, 0.5, 0.9, 0.95, 1.0):
            assert hist.percentile_since(snap, percentile) == (
                hist.since(snap).percentile_ms(percentile)
            )

    def test_empty_window_raises_like_reference(self):
        hist = LatencyHistogram()
        hist.record(3.0)
        snap = hist.snapshot()
        with pytest.raises(ValueError):
            hist.percentile_since(snap, 0.95)

    @settings(max_examples=60, deadline=None)
    @given(
        before=st.lists(
            st.floats(min_value=0.01, max_value=1e5), max_size=30
        ),
        after=st.lists(
            st.floats(min_value=0.01, max_value=1e5),
            min_size=1, max_size=30,
        ),
        percentile=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_equivalence_property(self, before, after, percentile):
        hist = LatencyHistogram()
        for value in before:
            hist.record(value)
        snap = hist.snapshot()
        for value in after:
            hist.record(value)
        assert hist.percentile_since(snap, percentile) == (
            hist.since(snap).percentile_ms(percentile)
        )


class TestRecordManyEquivalence:
    """A batched flush must be indistinguishable from per-sample record.

    The cohort cluster engine buffers every response latency and flushes
    once through ``record_many``; the scalar engine records per sample.
    Metrics-snapshot equality between the two engines rests on this.
    """

    @staticmethod
    def _assert_identical(a, b):
        assert a.count == b.count
        assert a.mean_ms == b.mean_ms  # bitwise: left-to-right sum
        assert a.max_ms == b.max_ms
        assert a.nonzero_buckets() == b.nonzero_buckets()
        if a.count:
            for p in (0.5, 0.95, 0.99, 1.0):
                assert a.percentile_ms(p) == b.percentile_ms(p)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=400
        ),
        split=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_sequential(self, values, split):
        sequential = LatencyHistogram()
        for v in values:
            sequential.record(v)
        one_flush = LatencyHistogram()
        one_flush.record_many(values)
        chunked = LatencyHistogram()
        chunked.record_many(values[:split])
        chunked.record_many(values[split:])
        self._assert_identical(sequential, one_flush)
        self._assert_identical(sequential, chunked)

    def test_empty_flush_is_a_noop(self):
        hist = LatencyHistogram()
        hist.record(3.0)
        before = (hist.count, hist.mean_ms, hist.max_ms)
        hist.record_many([])
        assert (hist.count, hist.mean_ms, hist.max_ms) == before

    def test_negative_values_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record_many([1.0, -0.5])
        assert hist.count == 0
