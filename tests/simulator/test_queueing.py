"""DES validation against closed-form queueing results."""

import random

import pytest

from repro.platforms.catalog import platform
from repro.simulator.openloop import OpenLoopSimulator
from repro.simulator.queueing import (
    erlang_c,
    interactive_response_law,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_wait,
    mm1k_blocking_probability,
    mm1k_mean_number,
    mm1k_mean_wait,
    mmm_mean_wait,
)
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)


def _cpu_workload(sampler, mean_cpu_ms, think_ms=0.0):
    profile = WorkloadProfile(
        name="queueing-test",
        description="synthetic single-station workload",
        emphasizes="testing",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=ResourceDemand(cpu_ms_ref=mean_cpu_ms),
        population=PopulationPolicy(fixed=1),
        qos=None,
        think_time_ms=think_ms,
        inorder_ipc_factor=1.0,
    )
    return Workload(profile, sampler)


class TestClosedForms:
    def test_mm1_twice_md1(self):
        assert mm1_mean_wait(10.0, 0.5) == pytest.approx(2 * md1_mean_wait(10.0, 0.5))

    def test_mg1_interpolates(self):
        det = mg1_mean_wait(10.0, 0.5, 0.0)
        exp = mg1_mean_wait(10.0, 0.5, 1.0)
        assert det == pytest.approx(md1_mean_wait(10.0, 0.5))
        assert exp == pytest.approx(mm1_mean_wait(10.0, 0.5))

    def test_erlang_c_single_server_is_rho(self):
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_erlang_c_known_value(self):
        # Classic table value: m=2, a=1 erlang -> P(wait) = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_mean_wait(10.0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)
        with pytest.raises(ValueError):
            interactive_response_law(0, 1.0, 0.0)


class TestDesAgainstClosedForms:
    def test_mm1_exponential_service(self):
        """Exponential CPU demand on the 1-core emb2 = M/M/1."""
        plat = platform("emb2")
        mean_cpu = 10.0
        service = plat.cpu_time_ms(mean_cpu, 0.0, 1.0)
        rho = 0.6

        def sampler(rng: random.Random) -> Request:
            return Request(
                demand=ResourceDemand(cpu_ms_ref=rng.expovariate(1.0 / mean_cpu))
            )

        workload = _cpu_workload(sampler, mean_cpu)
        result = OpenLoopSimulator(
            plat, workload, arrival_rate_rps=rho / service * 1000.0,
            config=SimConfig(warmup_requests=3000, measure_requests=25_000, seed=31),
        ).run()
        expected = service + mm1_mean_wait(service, rho)
        assert result.mean_response_ms == pytest.approx(expected, rel=0.08)

    def test_mmm_exponential_service_on_two_cores(self):
        """Exponential demand on a 2-core platform = M/M/2 (Erlang C)."""
        plat = platform("emb1")
        mean_cpu = 10.0
        service = plat.cpu_time_ms(mean_cpu, 0.0)
        offered = 1.2  # erlangs across 2 servers -> rho = 0.6

        def sampler(rng: random.Random) -> Request:
            return Request(
                demand=ResourceDemand(cpu_ms_ref=rng.expovariate(1.0 / mean_cpu))
            )

        workload = _cpu_workload(sampler, mean_cpu)
        result = OpenLoopSimulator(
            plat, workload, arrival_rate_rps=offered / service * 1000.0,
            config=SimConfig(warmup_requests=3000, measure_requests=25_000, seed=32),
        ).run()
        expected = service + mmm_mean_wait(2, service, offered)
        assert result.mean_response_ms == pytest.approx(expected, rel=0.08)

    def test_interactive_response_law_holds_in_closed_loop(self):
        """R = N/X - Z must hold exactly in any closed simulation."""
        plat = platform("desk")
        mean_cpu = 20.0
        think = 500.0

        def sampler(rng: random.Random) -> Request:
            return Request(
                demand=ResourceDemand(cpu_ms_ref=rng.expovariate(1.0 / mean_cpu))
            )

        workload = _cpu_workload(sampler, mean_cpu, think_ms=think)
        result = ServerSimulator(
            plat, workload, population=12,
            config=SimConfig(warmup_requests=2000, measure_requests=15_000, seed=33),
        ).run()
        # Compare cycle times (R + Z = N / X): the response time itself is
        # small relative to Z, so think-time sampling noise dominates a
        # direct R comparison.
        implied_r = interactive_response_law(
            12, result.throughput_rps / 1000.0, think
        )
        assert result.mean_response_ms + think == pytest.approx(
            implied_r + think, rel=0.02
        )


class TestMM1KClosedForms:
    def test_blocking_probability_known_values(self):
        # K=1 (no waiting room): P_block = rho / (1 + rho).
        assert mm1k_blocking_probability(0.5, 1) == pytest.approx(1.0 / 3.0)
        # rho -> 1 limit: uniform over K+1 states.
        assert mm1k_blocking_probability(1.0, 4) == pytest.approx(0.2)

    def test_blocking_vanishes_with_capacity_at_low_rho(self):
        assert mm1k_blocking_probability(0.5, 40) < 1e-11

    def test_overload_is_allowed_and_bounded(self):
        # Unlike the infinite-queue forms, rho >= 1 is meaningful.
        p = mm1k_blocking_probability(2.0, 10)
        assert 0.5 < p < 1.0
        # Carried load never exceeds the service rate.
        assert 2.0 * (1.0 - p) <= 1.0

    def test_mean_number_approaches_mm1_for_large_k(self):
        rho = 0.5
        assert mm1k_mean_number(rho, 60) == pytest.approx(rho / (1 - rho))

    def test_mean_wait_approaches_mm1_for_large_k(self):
        assert mm1k_mean_wait(10.0, 0.5, 60) == pytest.approx(
            mm1_mean_wait(10.0, 0.5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1k_blocking_probability(-0.1, 5)
        with pytest.raises(ValueError):
            mm1k_blocking_probability(0.5, 0)
        with pytest.raises(ValueError):
            mm1k_mean_wait(0.0, 0.5, 5)


class TestDesAgainstMM1K:
    @pytest.mark.parametrize("rho,capacity", [(0.8, 8), (1.2, 10)])
    def test_shed_rate_matches_blocking_probability(self, rho, capacity):
        """Exponential service + finite queue cap on emb2 = M/M/1/K.

        The simulated drop rate must match the closed-form blocking
        probability within 10% (the overload-PR acceptance bound), and
        the admitted requests' waiting time must match Little's law.
        """
        plat = platform("emb2")
        mean_cpu = 10.0
        service = plat.cpu_time_ms(mean_cpu, 0.0, 1.0)

        def sampler(rng: random.Random) -> Request:
            return Request(
                demand=ResourceDemand(cpu_ms_ref=rng.expovariate(1.0 / mean_cpu))
            )

        workload = _cpu_workload(sampler, mean_cpu)
        result = OpenLoopSimulator(
            plat, workload, arrival_rate_rps=rho / service * 1000.0,
            config=SimConfig(warmup_requests=3000, measure_requests=25_000, seed=41),
            queue_cap=capacity,
        ).run()
        expected_block = mm1k_blocking_probability(rho, capacity)
        assert result.drop_rate == pytest.approx(expected_block, rel=0.10)
        expected_wait = mm1k_mean_wait(service, rho, capacity)
        assert result.mean_response_ms - service == pytest.approx(
            expected_wait, rel=0.10
        )
