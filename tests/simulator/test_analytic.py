"""Tests of the MVA model, including DES cross-validation."""

import pytest

from repro.simulator.analytic import AnalyticServerModel, mva_throughput
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.suite import make_workload


class TestMvaThroughput:
    def test_single_station_saturates_at_capacity(self):
        # One server, 10 ms demand: X -> 0.1/ms as N grows.
        assert mva_throughput([(10.0, 1)], 100) == pytest.approx(0.1, rel=1e-3)

    def test_multi_server_capacity(self):
        assert mva_throughput([(10.0, 4)], 400) == pytest.approx(0.4, rel=1e-2)

    def test_single_client_sees_raw_demands(self):
        # N=1: X = 1/(D1 + D2 + Z).
        x = mva_throughput([(5.0, 1), (3.0, 1)], 1, think_ms=2.0)
        assert x == pytest.approx(1.0 / 10.0)

    def test_bottleneck_governs_saturation(self):
        x = mva_throughput([(10.0, 1), (2.0, 1)], 200)
        assert x == pytest.approx(0.1, rel=1e-2)

    def test_think_time_delays_low_population(self):
        slow = mva_throughput([(1.0, 1)], 5, think_ms=99.0)
        assert slow == pytest.approx(5 / 100.0, rel=0.05)

    def test_throughput_monotone_in_population(self):
        xs = [mva_throughput([(10.0, 2), (4.0, 1)], n) for n in (1, 2, 4, 8, 16)]
        assert all(a <= b + 1e-12 for a, b in zip(xs, xs[1:]))

    def test_zero_demand_stations_ignored(self):
        assert mva_throughput([(0.0, 1), (5.0, 1)], 50) == pytest.approx(0.2, rel=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            mva_throughput([(1.0, 1)], 0)
        with pytest.raises(ValueError):
            mva_throughput([(-1.0, 1)], 1)
        with pytest.raises(ValueError):
            mva_throughput([(1.0, 1)], 1, think_ms=-1.0)


class TestAnalyticServerModel:
    def test_bottleneck_identification(self, srvr1, emb1):
        assert AnalyticServerModel(srvr1, make_workload("websearch")).bottleneck() in (
            "mem",
            "cpu",
        )
        assert AnalyticServerModel(emb1, make_workload("webmail")).bottleneck() == "cpu"

    def test_saturation_bounds_closed_loop(self, emb1):
        model = AnalyticServerModel(emb1, make_workload("websearch"))
        assert model.throughput_rps(population=400) <= model.saturation_rps() * 1.001

    def test_disk_override_changes_disk_station(self, emb1):
        base = AnalyticServerModel(emb1, make_workload("mapred-wc"))
        slow = AnalyticServerModel(
            emb1, make_workload("mapred-wc"), disk_service_ms=1e4
        )
        assert slow.throughput_rps() < base.throughput_rps()
        assert slow.bottleneck() == "disk"

    def test_cpu_multiplier_slows_cpu_bound_workloads(self, emb1):
        base = AnalyticServerModel(emb1, make_workload("webmail"))
        slowed = AnalyticServerModel(
            emb1, make_workload("webmail"), cpu_multiplier=1.5
        )
        assert slowed.throughput_rps() < base.throughput_rps()

    @pytest.mark.parametrize("bench", ["webmail", "mapred-wc"])
    def test_des_and_mva_agree_at_saturation(self, emb1, bench):
        """The DES and MVA model the same network; at a saturating
        population their throughputs agree within ~12%."""
        workload = make_workload(bench)
        population = 48
        mva = AnalyticServerModel(emb1, workload).throughput_rps(population)
        des = (
            ServerSimulator(
                emb1,
                workload,
                population=population,
                config=SimConfig(warmup_requests=200, measure_requests=1500, seed=3),
            )
            .run()
            .throughput_rps
        )
        assert des == pytest.approx(mva, rel=0.12)
