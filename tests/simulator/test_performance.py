"""Tests of the top-level performance scoring."""

import pytest

from repro.platforms.catalog import platform
from repro.simulator.performance import (
    measure_performance,
    relative_performance_matrix,
)
from repro.simulator.server_sim import SimConfig
from repro.workloads.base import MetricKind
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def config():
    return SimConfig(warmup_requests=100, measure_requests=700, seed=13)


class TestMeasurePerformance:
    def test_interactive_score_is_rps(self, config):
        result = measure_performance(
            platform("desk"), make_workload("websearch"), config=config
        )
        assert result.metric_kind is MetricKind.RPS_QOS
        assert result.execution_time_s is None
        assert result.score == result.throughput_rps

    def test_batch_score_is_inverse_execution_time(self, config):
        result = measure_performance(
            platform("desk"), make_workload("mapred-wc"), config=config
        )
        assert result.metric_kind is MetricKind.EXECUTION_TIME
        assert result.execution_time_s is not None
        assert result.score == pytest.approx(1.0 / result.execution_time_s)

    def test_analytic_method_close_to_sim_for_batch(self, config):
        workload = make_workload("mapred-wc")
        plat = platform("srvr2")
        sim = measure_performance(plat, workload, config=config, method="sim")
        mva = measure_performance(plat, workload, method="analytic")
        assert mva.score == pytest.approx(sim.score, rel=0.15)

    def test_memory_slowdown_propagates(self, config):
        plat = platform("emb1")
        workload = make_workload("webmail")
        base = measure_performance(plat, workload, method="analytic")
        slowed = measure_performance(
            plat, workload, method="analytic", memory_slowdown=1.3
        )
        assert slowed.score < base.score

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            measure_performance(
                platform("desk"), make_workload("ytube"), method="magic"
            )


class TestRelativeMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return relative_performance_matrix(
            ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"],
            ["websearch", "webmail", "mapred-wc"],
            method="analytic",
        )

    def test_baseline_column_is_one(self, matrix):
        for bench in matrix:
            assert matrix[bench]["srvr1"] == pytest.approx(1.0)

    def test_lower_end_systems_never_beat_srvr1(self, matrix):
        for bench, row in matrix.items():
            for system, value in row.items():
                assert value <= 1.05, (bench, system)

    def test_emb2_is_always_worst(self, matrix):
        for bench, row in matrix.items():
            assert row["emb2"] == min(row.values()), bench

    def test_baseline_added_if_missing(self):
        matrix = relative_performance_matrix(
            ["desk"], ["mapred-wc"], baseline="srvr1", method="analytic"
        )
        assert "srvr1" in matrix["mapred-wc"]
