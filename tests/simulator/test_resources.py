"""Tests of multi-server FCFS resources."""

import pytest

from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource


def _run_jobs(servers, services):
    """Submit ``services`` at t=0; return completion times in order."""
    sim = Simulation()
    resource = Resource(sim, "r", servers)
    completions = []
    for i, service in enumerate(services):
        resource.acquire(service, lambda i=i: completions.append((i, sim.now)))
    sim.run()
    return dict(completions), resource


class TestResource:
    def test_single_server_serializes(self):
        times, _ = _run_jobs(1, [5.0, 3.0, 2.0])
        assert times == {0: 5.0, 1: 8.0, 2: 10.0}

    def test_two_servers_run_in_parallel(self):
        times, _ = _run_jobs(2, [5.0, 3.0, 2.0])
        # Job 2 starts when job 1 (the 3 ms one) finishes at t=3.
        assert times == {0: 5.0, 1: 3.0, 2: 5.0}

    def test_fcfs_ordering(self):
        times, _ = _run_jobs(1, [1.0] * 5)
        assert [times[i] for i in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_utilization_and_counters(self):
        times, resource = _run_jobs(2, [4.0, 4.0, 4.0, 4.0])
        assert resource.stats.completions == 4
        # 16 ms of work over 2 servers in 8 ms elapsed: fully busy.
        assert resource.utilization(8.0) == pytest.approx(1.0)
        assert resource.stats.peak_queue == 2

    def test_zero_service_time_allowed(self):
        times, _ = _run_jobs(1, [0.0, 0.0])
        assert times == {0: 0.0, 1: 0.0}

    def test_negative_service_rejected(self):
        sim = Simulation()
        r = Resource(sim, "r", 1)
        with pytest.raises(ValueError):
            r.acquire(-1.0, lambda: None)

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            Resource(Simulation(), "r", 0)

    def test_utilization_of_zero_window(self):
        _, resource = _run_jobs(1, [1.0])
        assert resource.utilization(0.0) == 0.0
