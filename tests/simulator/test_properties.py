"""Property-based tests on simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms.catalog import platform, platform_names
from repro.simulator.analytic import AnalyticServerModel, mva_throughput
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.suite import benchmark_names, make_workload


class TestMvaProperties:
    @given(
        demands=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100.0),
                st.integers(min_value=1, max_value=16),
            ),
            min_size=1,
            max_size=5,
        ),
        population=st.integers(min_value=1, max_value=200),
        think=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_throughput_bounded_by_every_station(self, demands, population, think):
        x = mva_throughput(demands, population, think)
        for demand, servers in demands:
            assert x <= servers / demand + 1e-9
        # Also bounded by the no-queueing limit.
        total = sum(d for d, _ in demands) + think
        assert x <= population / total + 1e-9

    @given(
        demand=st.floats(min_value=0.1, max_value=50.0),
        servers=st.integers(min_value=1, max_value=8),
        population=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_servers_never_hurt(self, demand, servers, population):
        x1 = mva_throughput([(demand, servers)], population)
        x2 = mva_throughput([(demand, servers + 1)], population)
        assert x2 >= x1 - 1e-9


class TestResourceConservation:
    @given(
        services=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=80
        ),
        servers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_jobs_complete_and_busy_time_conserved(self, services, servers):
        sim = Simulation()
        resource = Resource(sim, "r", servers)
        done = []
        for i, service in enumerate(services):
            resource.acquire(service, lambda i=i: done.append(i))
        sim.run()
        assert sorted(done) == list(range(len(services)))
        assert resource.stats.completions == len(services)
        assert resource.stats.busy_time_ms == pytest.approx(sum(services))
        # Makespan >= total work / servers (no work invented).
        assert sim.now >= sum(services) / servers - 1e-9


class TestServerSimInvariants:
    @pytest.mark.parametrize("bench", benchmark_names())
    def test_every_benchmark_runs_on_every_platform(self, bench):
        """Smoke matrix: 5 benchmarks x 6 platforms, small windows."""
        workload = make_workload(bench)
        config = SimConfig(warmup_requests=40, measure_requests=200, seed=3)
        for name in platform_names():
            result = ServerSimulator(
                platform(name), workload, population=8, config=config
            ).run()
            assert result.throughput_rps > 0, (bench, name)
            assert result.mean_response_ms > 0
            assert 0 < result.qos_percentile_ms or result.qos_percentile_ms >= 0

    def test_throughput_scales_down_with_uniform_slowdown(self, emb1):
        """A k-times CPU slowdown cannot speed anything up."""
        workload = make_workload("webmail")
        config = SimConfig(warmup_requests=60, measure_requests=400, seed=4)
        xs = [
            ServerSimulator(
                emb1, workload, population=16, config=config,
                memory_slowdown=factor,
            ).run().throughput_rps
            for factor in (1.0, 1.25, 1.5, 2.0)
        ]
        for a, b in zip(xs, xs[1:]):
            assert b <= a * 1.02


class TestAnalyticConsistency:
    @pytest.mark.parametrize("bench", benchmark_names())
    def test_saturation_dominates_any_population(self, bench):
        workload = make_workload(bench)
        model = AnalyticServerModel(platform("desk"), workload)
        saturation = model.saturation_rps()
        for population in (1, 8, 64, 256):
            assert model.throughput_rps(population) <= saturation * 1.001
