"""Tests of the open-loop simulator, incl. M/D/1 validation."""


import pytest

from repro.platforms.catalog import platform
from repro.simulator.openloop import OpenLoopSimulator
from repro.simulator.server_sim import SimConfig
from repro.workloads.base import (
    MetricKind,
    PopulationPolicy,
    Request,
    ResourceDemand,
    Workload,
    WorkloadProfile,
)


def _constant_cpu_workload(cpu_ms: float) -> Workload:
    """Deterministic CPU-only workload: an M/D/1 queue on one core."""
    demand = ResourceDemand(cpu_ms_ref=cpu_ms)
    profile = WorkloadProfile(
        name="constant",
        description="deterministic single-station test workload",
        emphasizes="testing",
        metric_kind=MetricKind.RPS_QOS,
        mean_demand=demand,
        population=PopulationPolicy(fixed=1),
        qos=None,
        inorder_ipc_factor=1.0,  # keep emb2's service time deterministic
    )
    return Workload(profile, lambda rng: Request(demand=demand))


class TestMD1Validation:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_wait_matches_md1_formula(self, rho):
        """M/D/1: Wq = rho * s / (2 (1 - rho)); response = s + Wq.

        emb2 has one core, so a CPU-only deterministic workload is an
        exact M/D/1 queue.  The DES must match the closed form.
        """
        plat = platform("emb2")
        cpu_ref_ms = 10.0
        service = plat.cpu_time_ms(cpu_ref_ms, 0.0, 1.0)  # deterministic
        rate_per_ms = rho / service
        workload = _constant_cpu_workload(cpu_ref_ms)
        result = OpenLoopSimulator(
            plat,
            workload,
            arrival_rate_rps=rate_per_ms * 1000.0,
            config=SimConfig(warmup_requests=2000, measure_requests=20_000, seed=6),
        ).run()
        expected_response = service + rho * service / (2 * (1 - rho))
        assert result.mean_response_ms == pytest.approx(expected_response, rel=0.06)

    def test_utilization_matches_offered_load(self):
        plat = platform("emb2")
        workload = _constant_cpu_workload(10.0)
        service = plat.cpu_time_ms(10.0, 0.0, 1.0)
        result = OpenLoopSimulator(
            plat,
            workload,
            arrival_rate_rps=0.5 / service * 1000.0,
            config=SimConfig(warmup_requests=500, measure_requests=5000, seed=7),
        ).run()
        assert result.utilization["cpu"] == pytest.approx(0.5, abs=0.04)


class TestOpenLoopBehaviour:
    def test_latency_grows_with_offered_load(self):
        plat = platform("desk")
        from repro.workloads.suite import make_workload

        workload = make_workload("websearch")
        config = SimConfig(warmup_requests=150, measure_requests=1200, seed=8)
        low = OpenLoopSimulator(plat, workload, arrival_rate_rps=10.0,
                                config=config).run()
        high = OpenLoopSimulator(plat, workload, arrival_rate_rps=30.0,
                                 config=config).run()
        assert high.mean_response_ms > low.mean_response_ms
        assert high.qos_percentile_ms > low.qos_percentile_ms

    def test_throughput_tracks_arrival_rate_below_saturation(self):
        plat = platform("desk")
        from repro.workloads.suite import make_workload

        workload = make_workload("webmail")
        result = OpenLoopSimulator(
            plat, workload, arrival_rate_rps=8.0,
            config=SimConfig(warmup_requests=150, measure_requests=1500, seed=9),
        ).run()
        assert result.throughput_rps == pytest.approx(8.0, rel=0.1)

    def test_overload_raises(self):
        plat = platform("emb2")
        from repro.workloads.suite import make_workload

        workload = make_workload("webmail")
        with pytest.raises(RuntimeError, match="cannot sustain"):
            OpenLoopSimulator(
                plat, workload, arrival_rate_rps=500.0,
                config=SimConfig(warmup_requests=100, measure_requests=1000, seed=10),
            ).run()

    def test_validation(self):
        plat = platform("desk")
        from repro.workloads.suite import make_workload

        with pytest.raises(ValueError):
            OpenLoopSimulator(plat, make_workload("webmail"), arrival_rate_rps=0.0)
        with pytest.raises(ValueError):
            OpenLoopSimulator(
                plat, make_workload("webmail"), arrival_rate_rps=1.0,
                memory_slowdown=0.9,
            )


class TestQueueCap:
    def test_no_cap_reports_no_drops(self):
        plat = platform("desk")
        from repro.workloads.suite import make_workload

        result = OpenLoopSimulator(
            plat, make_workload("webmail"), arrival_rate_rps=8.0,
            config=SimConfig(warmup_requests=100, measure_requests=800, seed=12),
        ).run()
        assert result.dropped_requests == 0
        assert result.drop_rate == 0.0

    def test_cap_keeps_unsustainable_load_finite(self):
        """The overload that raises without a cap completes with one:
        excess arrivals are dropped and accounted, throughput saturates
        at the service capacity, and the run warns that the latency
        figures cover only the admitted minority."""
        plat = platform("emb2")
        workload = _constant_cpu_workload(10.0)
        service = plat.cpu_time_ms(10.0, 0.0, 1.0)
        with pytest.warns(RuntimeWarning, match="unsustainable"):
            result = OpenLoopSimulator(
                plat, workload, arrival_rate_rps=4.0 / service * 1000.0,
                config=SimConfig(warmup_requests=300, measure_requests=3000,
                                 seed=13),
                queue_cap=5,
            ).run()
        assert result.drop_rate > 0.5
        # Carried load ~ the service rate, not the offered rate.
        assert result.throughput_rps <= 1000.0 / service * 1.05
        assert result.dropped_requests > 0

    def test_moderate_drops_do_not_warn(self):
        plat = platform("emb2")
        workload = _constant_cpu_workload(10.0)
        service = plat.cpu_time_ms(10.0, 0.0, 1.0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            result = OpenLoopSimulator(
                plat, workload, arrival_rate_rps=0.8 / service * 1000.0,
                config=SimConfig(warmup_requests=300, measure_requests=3000,
                                 seed=14),
                queue_cap=8,
            ).run()
        assert 0.0 < result.drop_rate < 0.5

    def test_validation(self):
        plat = platform("desk")
        from repro.workloads.suite import make_workload

        with pytest.raises(ValueError):
            OpenLoopSimulator(
                plat, make_workload("webmail"), arrival_rate_rps=1.0,
                queue_cap=0,
            )
