"""Tests of the enclosure designs against the paper's cooling claims."""

import pytest

from repro.cooling.enclosure import (
    AGGREGATED_MICROBLADE,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
)


class TestPaperClaims:
    def test_densities_match_paper(self):
        """Paper: 40 conventional, 320 dual-entry, 1250 microblades."""
        assert CONVENTIONAL_ENCLOSURE.systems_per_rack == 40
        assert DUAL_ENTRY_ENCLOSURE.systems_per_rack == 320
        assert AGGREGATED_MICROBLADE.systems_per_rack == 1250

    def test_dual_entry_roughly_2x(self):
        """Paper: ~50% improvement in cooling efficiencies / 2x potential."""
        gain = DUAL_ENTRY_ENCLOSURE.cooling_efficiency_vs(CONVENTIONAL_ENCLOSURE)
        assert 1.7 < gain < 2.7

    def test_aggregated_roughly_4x(self):
        gain = AGGREGATED_MICROBLADE.cooling_efficiency_vs(CONVENTIONAL_ENCLOSURE)
        assert 3.4 < gain < 4.6

    def test_baseline_self_comparison_is_identity(self):
        assert CONVENTIONAL_ENCLOSURE.cooling_efficiency_vs(
            CONVENTIONAL_ENCLOSURE
        ) == pytest.approx(1.0)


class TestMechanisms:
    def test_dual_entry_gain_comes_from_shorter_parallel_airflow(self):
        assert (
            DUAL_ENTRY_ENCLOSURE.airflow.flow_length_m
            < CONVENTIONAL_ENCLOSURE.airflow.flow_length_m
        )
        assert DUAL_ENTRY_ENCLOSURE.airflow.parallel_paths > 1
        assert DUAL_ENTRY_ENCLOSURE.fan_power_per_server_w() < (
            CONVENTIONAL_ENCLOSURE.fan_power_per_server_w()
        )

    def test_microblade_gain_adds_heat_pipe_conduction(self):
        assert (
            AGGREGATED_MICROBLADE.conduction_k_w
            < CONVENTIONAL_ENCLOSURE.conduction_k_w / 2
        )
        assert (
            AGGREGATED_MICROBLADE.thermal_circuit().total_k_w
            < DUAL_ENTRY_ENCLOSURE.thermal_circuit().total_k_w
        )

    def test_fan_power_factor_is_reciprocal_efficiency(self):
        gain = DUAL_ENTRY_ENCLOSURE.cooling_efficiency_vs(CONVENTIONAL_ENCLOSURE)
        factor = DUAL_ENTRY_ENCLOSURE.fan_power_factor(CONVENTIONAL_ENCLOSURE)
        assert factor == pytest.approx(1.0 / gain)

    def test_more_heat_removable_within_same_budget(self):
        conventional = CONVENTIONAL_ENCLOSURE.thermal_circuit().max_heat_w(40.0)
        microblade = AGGREGATED_MICROBLADE.thermal_circuit().max_heat_w(40.0)
        assert microblade > 2.5 * conventional
