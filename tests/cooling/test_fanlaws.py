"""Tests of the fan affinity laws and operating-point solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooling.fanlaws import Fan, operating_point, speed_margin
from repro.cooling.thermal import AirflowPath, required_flow_m3_s


@pytest.fixture
def fan():
    return Fan(
        name="40mm",
        rated_rpm=6000.0,
        rated_flow_m3_s=0.008,
        rated_power_w=3.0,
        max_rpm=12000.0,
    )


@pytest.fixture
def path():
    return AirflowPath(flow_length_m=0.3, inlet_area_m2=0.01)


class TestAffinityLaws:
    def test_flow_linear_in_rpm(self, fan):
        assert fan.flow_at(3000.0) == pytest.approx(0.004)
        assert fan.flow_at(12000.0) == pytest.approx(0.016)

    def test_power_cubic_in_rpm(self, fan):
        assert fan.power_at(12000.0) == pytest.approx(3.0 * 8)
        assert fan.power_at(3000.0) == pytest.approx(3.0 / 8)

    def test_rpm_for_flow_inverts(self, fan):
        rpm = fan.rpm_for_flow(0.012)
        assert fan.flow_at(rpm) == pytest.approx(0.012)

    def test_overspeed_rejected(self, fan):
        with pytest.raises(ValueError, match="cannot deliver"):
            fan.rpm_for_flow(1.0)
        with pytest.raises(ValueError):
            fan.power_at(20000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Fan("bad", rated_rpm=0.0, rated_flow_m3_s=0.01,
                rated_power_w=1.0, max_rpm=100.0)
        with pytest.raises(ValueError):
            Fan("bad", rated_rpm=5000.0, rated_flow_m3_s=0.01,
                rated_power_w=1.0, max_rpm=4000.0)

    @given(rpm_fraction=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_halving_speed_cuts_power_eightfold(self, rpm_fraction):
        fan = Fan(
            name="40mm", rated_rpm=6000.0, rated_flow_m3_s=0.008,
            rated_power_w=3.0, max_rpm=12000.0,
        )
        rpm = fan.max_rpm * rpm_fraction
        assert fan.power_at(rpm) == pytest.approx(8 * fan.power_at(rpm / 2), rel=1e-6)


class TestOperatingPoint:
    def test_solves_heat_balance(self, fan, path):
        point = operating_point(fan, path, heat_w=75.0, delta_t_k=12.0)
        assert point.flow_m3_s == pytest.approx(required_flow_m3_s(75.0, 12.0))
        assert point.fan_power_w > 0
        assert point.pressure_pa > 0

    def test_more_heat_cubes_fan_power(self, fan, path):
        low = operating_point(fan, path, heat_w=40.0, delta_t_k=12.0)
        high = operating_point(fan, path, heat_w=80.0, delta_t_k=12.0)
        assert high.fan_power_w == pytest.approx(8 * low.fan_power_w, rel=1e-6)

    def test_bigger_temperature_budget_saves_speed(self, fan, path):
        tight = operating_point(fan, path, heat_w=75.0, delta_t_k=8.0)
        loose = operating_point(fan, path, heat_w=75.0, delta_t_k=16.0)
        assert loose.rpm < tight.rpm

    def test_efficiency_metric(self, fan, path):
        point = operating_point(fan, path, heat_w=75.0, delta_t_k=12.0)
        assert point.efficiency_w_per_w == pytest.approx(75.0 / point.fan_power_w)

    def test_speed_margin_shrinks_with_heat(self, fan, path):
        cool = speed_margin(fan, path, heat_w=30.0, delta_t_k=12.0)
        hot = speed_margin(fan, path, heat_w=90.0, delta_t_k=12.0)
        assert 0 <= hot < cool < 1
