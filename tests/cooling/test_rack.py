"""Tests of rack packing."""

import pytest

from repro.cooling.enclosure import (
    AGGREGATED_MICROBLADE,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
)
from repro.cooling.rack import pack_rack
from repro.costmodel.catalog import server_bill


class TestPackRack:
    def test_conventional_srvr1_rack_power(self):
        """Section 3.2: srvr1 consumes 13.6 kW/rack."""
        packing = pack_rack(CONVENTIONAL_ENCLOSURE, server_bill("srvr1").power_w)
        assert packing.rack_power_kw == pytest.approx(13.64, abs=0.05)

    def test_conventional_emb1_rack_power_low(self):
        packing = pack_rack(CONVENTIONAL_ENCLOSURE, server_bill("emb1").power_w)
        assert packing.rack_power_kw < 3.0

    def test_switch_share_constant_per_server(self):
        dense = pack_rack(DUAL_ENTRY_ENCLOSURE, 78.0)
        config = dense.rack_config()
        assert config.servers_per_rack == 320
        assert config.switch_cost_per_server_usd == pytest.approx(68.75)
        assert config.switch_power_per_server_w == pytest.approx(1.0)

    def test_racks_for_fleet(self):
        packing = pack_rack(AGGREGATED_MICROBLADE, 30.0)
        assert packing.racks_for(0) == 0
        assert packing.racks_for(1) == 1
        assert packing.racks_for(1250) == 1
        assert packing.racks_for(1251) == 2
        with pytest.raises(ValueError):
            packing.racks_for(-1)

    def test_compaction_reduces_racks(self):
        """Paper: N2 'consumes 30% less racks'-style compaction claims."""
        fleet = 10_000
        conventional = pack_rack(CONVENTIONAL_ENCLOSURE, 52.0).racks_for(fleet)
        microblade = pack_rack(AGGREGATED_MICROBLADE, 30.0).racks_for(fleet)
        assert microblade < conventional / 10

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            pack_rack(CONVENTIONAL_ENCLOSURE, -1.0)
