"""Tests of the first-order thermal models."""

import pytest

from repro.cooling.thermal import (
    AirflowPath,
    COPPER_CONDUCTIVITY,
    HeatPipe,
    ThermalCircuit,
    fan_power_w,
    required_flow_m3_s,
)


class TestAirflowPath:
    def test_pressure_drop_scales_with_length(self):
        short = AirflowPath(0.2, 0.01)
        long = AirflowPath(0.4, 0.01)
        flow = 0.01
        assert long.pressure_drop_pa(flow) == pytest.approx(
            2 * short.pressure_drop_pa(flow)
        )

    def test_parallel_paths_cut_velocity(self):
        single = AirflowPath(0.3, 0.01, parallel_paths=1)
        double = AirflowPath(0.3, 0.01, parallel_paths=2)
        assert double.velocity_m_s(0.01) == pytest.approx(
            single.velocity_m_s(0.01) / 2
        )
        # Quadratic in velocity: 4x lower pressure drop.
        assert double.pressure_drop_pa(0.01) == pytest.approx(
            single.pressure_drop_pa(0.01) / 4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AirflowPath(0.0, 0.01)
        with pytest.raises(ValueError):
            AirflowPath(0.3, 0.01, parallel_paths=0)
        with pytest.raises(ValueError):
            AirflowPath(0.3, 0.01).velocity_m_s(-1.0)


class TestFanPower:
    def test_more_heat_needs_more_fan_power(self):
        path = AirflowPath(0.5, 0.01)
        assert fan_power_w(path, 150, 12) > fan_power_w(path, 75, 12)

    def test_larger_temperature_budget_saves_power(self):
        path = AirflowPath(0.5, 0.01)
        assert fan_power_w(path, 75, 20) < fan_power_w(path, 75, 10)

    def test_required_flow_formula(self):
        # Q = P / (rho * cp * dT)
        assert required_flow_m3_s(1186.0 * 1005.0 * 0.01, 1.0) == pytest.approx(
            10.0, rel=0.01
        )

    def test_validation(self):
        path = AirflowPath(0.5, 0.01)
        with pytest.raises(ValueError):
            fan_power_w(path, 75, 12, fan_efficiency=0.0)
        with pytest.raises(ValueError):
            required_flow_m3_s(-1.0, 10.0)
        with pytest.raises(ValueError):
            required_flow_m3_s(10.0, 0.0)


class TestHeatPipe:
    def test_paper_claim_3x_copper(self):
        pipe = HeatPipe(length_m=0.1, cross_section_m2=1e-4)
        assert pipe.conductivity_w_mk == pytest.approx(3 * COPPER_CONDUCTIVITY)

    def test_resistance_formula(self):
        pipe = HeatPipe(length_m=0.12, cross_section_m2=4e-4)
        assert pipe.conduction_resistance_k_w == pytest.approx(
            0.12 / (1200.0 * 4e-4)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatPipe(length_m=0.0, cross_section_m2=1e-4)


class TestThermalCircuit:
    def test_series_resistance(self):
        circuit = ThermalCircuit(conduction_k_w=0.2, convection_k_w=0.3)
        assert circuit.total_k_w == pytest.approx(0.5)
        assert circuit.junction_rise_k(100.0) == pytest.approx(50.0)
        assert circuit.max_heat_w(25.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalCircuit(conduction_k_w=-0.1, convection_k_w=0.3)
        with pytest.raises(ValueError):
            ThermalCircuit(0.1, 0.1).max_heat_w(0.0)
