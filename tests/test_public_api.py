"""Public-API surface checks: every exported name resolves and works."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.costmodel",
    "repro.platforms",
    "repro.workloads",
    "repro.simulator",
    "repro.memsim",
    "repro.flashcache",
    "repro.cooling",
    "repro.cluster",
    "repro.faults",
    "repro.obs",
    "repro.perf",
    "repro.validation",
    "repro.experiments",
    "repro.scenario",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", [p for p in PACKAGES if p != "repro.experiments"])
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_convenience_imports():
    import repro

    assert repro.__version__ == "1.0.0"
    assert callable(repro.n1_design)
    assert callable(repro.n2_design)
    assert callable(repro.harmonic_mean)


def test_version_matches_pyproject():
    import pathlib
    import re

    import repro

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    match = re.search(r'^version = "(.+)"$', pyproject.read_text(), re.M)
    assert match and match.group(1) == repro.__version__


class TestEndToEndSmoke:
    """The README quickstart, executed."""

    def test_readme_quickstart_flow(self):
        from repro.costmodel import SERVER_BILLS, TcoModel
        from repro.platforms import platform
        from repro.simulator import measure_performance
        from repro.workloads import make_workload

        perf = measure_performance(
            platform("emb1"), make_workload("mapred-wc"), method="analytic"
        )
        assert perf.score > 0

        tco = TcoModel().breakdown(SERVER_BILLS["emb1"])
        assert tco.total_usd > tco.hardware_total_usd > 0

    def test_design_comparison_flow(self):
        from repro.core import evaluate_designs, baseline_design, n2_design

        evaluation = evaluate_designs(
            [baseline_design("srvr1"), n2_design()],
            ["mapred-wc"],
            baseline="srvr1",
            method="analytic",
        )
        assert evaluation.table("Perf/TCO-$").value("mapred-wc", "N2") > 1.0
