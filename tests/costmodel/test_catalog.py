"""Catalog validation against the paper's published totals."""

import pytest

from repro.costmodel.catalog import SERVER_BILLS, server_bill, system_names
from repro.costmodel.components import Component
from repro.costmodel.rack import STANDARD_RACK

#: Table 2 published totals: (watt, inf-$ including switch share).
PAPER_TABLE2 = {
    "srvr1": (340, 3294),
    "srvr2": (215, 1689),
    "desk": (135, 849),
    "mobl": (78, 989),
    "emb1": (52, 499),
    "emb2": (35, 379),
}


class TestCatalog:
    def test_all_six_systems_present(self):
        assert set(system_names()) == set(PAPER_TABLE2)
        assert set(SERVER_BILLS) == set(PAPER_TABLE2)

    @pytest.mark.parametrize("system", list(PAPER_TABLE2))
    def test_power_matches_table2(self, system):
        watt, _ = PAPER_TABLE2[system]
        assert server_bill(system).power_w == pytest.approx(watt, abs=0.01)

    @pytest.mark.parametrize("system", list(PAPER_TABLE2))
    def test_inf_cost_matches_table2(self, system):
        _, inf = PAPER_TABLE2[system]
        total = (
            server_bill(system).hardware_cost_usd
            + STANDARD_RACK.switch_cost_per_server_usd
        )
        assert total == pytest.approx(inf, abs=1.0)

    def test_srvr1_component_breakdown_exact(self):
        """Figure 1(a) publishes srvr1's full breakdown."""
        bill = server_bill("srvr1")
        assert bill.cost_of(Component.CPU) == 1700
        assert bill.cost_of(Component.MEMORY) == 350
        assert bill.cost_of(Component.DISK) == 275
        assert bill.cost_of(Component.BOARD) == 400
        assert bill.cost_of(Component.POWER_FANS) == 500
        assert bill.power_of(Component.CPU) == 210

    def test_srvr2_component_breakdown_exact(self):
        bill = server_bill("srvr2")
        assert bill.cost_of(Component.CPU) == 650
        assert bill.power_of(Component.CPU) == 105
        assert bill.cost_of(Component.DISK) == 120

    def test_nonserver_systems_share_desktop_disk(self):
        """Table 3(a): $120 / 10 W desktop disk on all non-srvr1 systems."""
        for system in ("srvr2", "desk", "mobl", "emb1", "emb2"):
            bill = server_bill(system)
            assert bill.cost_of(Component.DISK) == 120
            assert bill.power_of(Component.DISK) == 10

    def test_unknown_system_raises_with_known_names(self):
        with pytest.raises(KeyError, match="srvr1"):
            server_bill("bogus")

    def test_consumer_memory_cheaper_than_fbdimm(self):
        """Paper: consumer technologies like DDR2 reduce memory cost."""
        fbdimm = server_bill("srvr2").cost_of(Component.MEMORY)
        for system in ("desk", "mobl", "emb1", "emb2"):
            assert server_bill(system).cost_of(Component.MEMORY) < fbdimm
