"""Unit tests for component specs and server bills."""

import pytest

from repro.costmodel.components import Component, ComponentSpec, ServerBill


def _bill(**overrides):
    components = {
        Component.CPU: ComponentSpec(100.0, 50.0),
        Component.MEMORY: ComponentSpec(40.0, 10.0),
        Component.DISK: ComponentSpec(30.0, 8.0),
    }
    components.update(overrides)
    return ServerBill(name="test", components=components)


class TestComponentSpec:
    def test_holds_cost_and_power(self):
        spec = ComponentSpec(123.0, 45.0)
        assert spec.cost_usd == 123.0
        assert spec.power_w == 45.0

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            ComponentSpec(-1.0, 10.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            ComponentSpec(1.0, -10.0)

    def test_scaled_applies_factors_independently(self):
        spec = ComponentSpec(100.0, 40.0).scaled(cost_factor=0.5, power_factor=0.25)
        assert spec.cost_usd == 50.0
        assert spec.power_w == 10.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ComponentSpec(1.0, 1.0).scaled(cost_factor=-1.0)


class TestServerBill:
    def test_totals_sum_components(self):
        bill = _bill()
        assert bill.hardware_cost_usd == pytest.approx(170.0)
        assert bill.power_w == pytest.approx(68.0)

    def test_cost_and_power_of_component(self):
        bill = _bill()
        assert bill.cost_of(Component.CPU) == 100.0
        assert bill.power_of(Component.MEMORY) == 10.0

    def test_missing_component_reads_zero(self):
        bill = _bill()
        assert bill.cost_of(Component.POWER_FANS) == 0.0
        assert bill.power_of(Component.POWER_FANS) == 0.0

    def test_empty_bill_rejected(self):
        with pytest.raises(ValueError):
            ServerBill(name="empty", components={})

    def test_items_follow_enum_order(self):
        bill = _bill()
        assert [c for c, _ in bill.items()] == [
            Component.CPU,
            Component.MEMORY,
            Component.DISK,
        ]

    def test_replace_overrides_single_component(self):
        bill = _bill().replace(disk=ComponentSpec(5.0, 1.0))
        assert bill.cost_of(Component.DISK) == 5.0
        assert bill.cost_of(Component.CPU) == 100.0  # untouched

    def test_replace_can_rename(self):
        assert _bill().replace(name="other").name == "other"

    def test_replace_rejects_unknown_component(self):
        with pytest.raises(ValueError):
            _bill().replace(gpu=ComponentSpec(1.0, 1.0))

    def test_replace_does_not_mutate_original(self):
        original = _bill()
        original.replace(disk=ComponentSpec(5.0, 1.0))
        assert original.cost_of(Component.DISK) == 30.0

    def test_scaled_scales_every_component(self):
        bill = _bill().scaled(cost_factor=2.0, power_factor=0.5)
        assert bill.hardware_cost_usd == pytest.approx(340.0)
        assert bill.power_w == pytest.approx(34.0)
