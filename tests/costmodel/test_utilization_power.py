"""Tests of utilization-based power accounting."""

import pytest

from repro.costmodel.catalog import server_bill
from repro.costmodel.components import Component
from repro.costmodel.utilization_power import (
    DEFAULT_IDLE_FRACTIONS,
    UtilizationPowerModel,
)


@pytest.fixture(scope="module")
def model():
    return UtilizationPowerModel()


class TestComponentPower:
    def test_idle_and_peak_endpoints(self, model):
        bill = server_bill("srvr2")
        cpu_peak = bill.power_of(Component.CPU)
        idle = model.component_power_w(bill, Component.CPU, 0.0)
        peak = model.component_power_w(bill, Component.CPU, 1.0)
        assert idle == pytest.approx(
            DEFAULT_IDLE_FRACTIONS[Component.CPU] * cpu_peak
        )
        assert peak == pytest.approx(cpu_peak)

    def test_linear_between_endpoints(self, model):
        bill = server_bill("srvr2")
        half = model.component_power_w(bill, Component.CPU, 0.5)
        idle = model.component_power_w(bill, Component.CPU, 0.0)
        peak = model.component_power_w(bill, Component.CPU, 1.0)
        assert half == pytest.approx((idle + peak) / 2)

    def test_utilization_bounds(self, model):
        with pytest.raises(ValueError):
            model.component_power_w(server_bill("desk"), Component.CPU, 1.5)


class TestServerPower:
    def test_full_load_equals_nameplate(self, model):
        bill = server_bill("srvr1")
        utils = {"cpu": 1.0, "mem": 1.0, "disk": 1.0, "nic": 1.0}
        # Board and fans only reach their idle fractions; everything with
        # a resource mapping reaches peak.
        power = model.server_power_w(bill, utils)
        assert power < bill.power_w
        assert power > 0.9 * bill.power_w

    def test_zero_load_is_the_idle_floor(self, model):
        bill = server_bill("srvr1")
        power = model.server_power_w(bill, {})
        expected = sum(
            bill.power_of(c) * DEFAULT_IDLE_FRACTIONS[c] for c in Component
        )
        assert power == pytest.approx(expected)

    def test_monotone_in_utilization(self, model):
        bill = server_bill("emb1")
        low = model.server_power_w(bill, {"cpu": 0.2, "mem": 0.1, "disk": 0.1})
        high = model.server_power_w(bill, {"cpu": 0.9, "mem": 0.8, "disk": 0.7})
        assert high > low


class TestImpliedActivityFactor:
    def test_factor_between_idle_floor_and_one(self, model):
        bill = server_bill("desk")
        factor = model.implied_activity_factor(
            bill, {"cpu": 0.7, "mem": 0.5, "disk": 0.3}
        )
        assert 0.4 < factor < 1.0

    def test_papers_flat_factor_is_plausible_at_moderate_load(self, model):
        """At ~60-80% CPU load the implied factor brackets 0.75."""
        bill = server_bill("srvr1")
        low = model.implied_activity_factor(bill, {"cpu": 0.4, "mem": 0.3, "disk": 0.2})
        high = model.implied_activity_factor(bill, {"cpu": 1.0, "mem": 0.8, "disk": 0.6})
        assert low < 0.75 < high

    def test_invalid_idle_fraction_rejected(self):
        with pytest.raises(ValueError):
            UtilizationPowerModel(idle_fractions={Component.CPU: 1.2})
