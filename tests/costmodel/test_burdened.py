"""Tests of the Patel-Shah burdened power-and-cooling model.

The key validation: with the paper's defaults the model reproduces
Figure 1(a)'s published burdened costs for srvr1 and srvr2.
"""

import pytest

from repro.costmodel.burdened import (
    BurdenedCostParameters,
    BurdenedPowerCoolingModel,
    DEFAULT_BURDEN_PARAMETERS,
    HOURS_PER_YEAR,
)
from repro.costmodel.catalog import server_bill
from repro.costmodel.power import PowerModel


class TestBurdenedCostParameters:
    def test_default_burden_factor(self):
        # 1 + K1 + L1*(1 + K2) = 1 + 1.33 + 0.8 * 1.667
        assert DEFAULT_BURDEN_PARAMETERS.burden_factor == pytest.approx(3.6636)

    def test_tariff_conversion(self):
        assert DEFAULT_BURDEN_PARAMETERS.tariff_usd_per_wh == pytest.approx(1e-4)

    def test_rejects_negative_factors(self):
        with pytest.raises(ValueError):
            BurdenedCostParameters(k1=-0.1)

    def test_rejects_nonpositive_tariff(self):
        with pytest.raises(ValueError):
            BurdenedCostParameters(tariff_usd_per_mwh=0.0)


class TestBurdenedPowerCoolingModel:
    def test_hours_over_three_years(self):
        assert BurdenedPowerCoolingModel().hours == pytest.approx(3 * HOURS_PER_YEAR)

    def test_cost_is_linear_in_power(self):
        model = BurdenedPowerCoolingModel()
        assert model.cost_usd(200.0) == pytest.approx(2 * model.cost_usd(100.0))

    def test_cost_per_watt(self):
        model = BurdenedPowerCoolingModel()
        assert model.cost_per_watt_usd() == pytest.approx(model.cost_usd(1.0))

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            BurdenedPowerCoolingModel().cost_usd(-1.0)

    def test_zero_years_rejected(self):
        with pytest.raises(ValueError):
            BurdenedPowerCoolingModel(years=0)


class TestPaperValidation:
    """Figure 1(a) published values: srvr1 $2,464 and srvr2 $1,561."""

    @pytest.mark.parametrize(
        "system,paper_pc_usd",
        [("srvr1", 2464.0), ("srvr2", 1561.0)],
    )
    def test_three_year_pc_matches_paper(self, system, paper_pc_usd):
        power_model = PowerModel()
        burdened = BurdenedPowerCoolingModel()
        consumed = power_model.server_consumed_w(server_bill(system))
        cost = burdened.cost_usd(consumed)
        # Within $5 of the paper's published (rounded) numbers.
        assert cost == pytest.approx(paper_pc_usd, abs=5.0)

    def test_tariff_range_scales_costs(self):
        low = BurdenedPowerCoolingModel(BurdenedCostParameters(tariff_usd_per_mwh=50))
        high = BurdenedPowerCoolingModel(BurdenedCostParameters(tariff_usd_per_mwh=170))
        assert high.cost_usd(100) == pytest.approx(low.cost_usd(100) * 3.4)
