"""Tests of rack-level configuration."""

import pytest

from repro.costmodel.rack import RackConfig, STANDARD_RACK


class TestRackConfig:
    def test_standard_rack_matches_paper(self):
        assert STANDARD_RACK.servers_per_rack == 40
        assert STANDARD_RACK.switch_rack_cost_usd == 2750.0
        assert STANDARD_RACK.switch_rack_power_w == 40.0

    def test_per_server_shares(self):
        assert STANDARD_RACK.switch_cost_per_server_usd == pytest.approx(68.75)
        assert STANDARD_RACK.switch_power_per_server_w == pytest.approx(1.0)

    def test_rack_power_sums_servers_and_switch(self):
        assert STANDARD_RACK.rack_power_w(100.0) == pytest.approx(4040.0)

    def test_rack_power_rejects_negative(self):
        with pytest.raises(ValueError):
            STANDARD_RACK.rack_power_w(-5.0)

    def test_with_density_keeps_switch_by_default(self):
        dense = STANDARD_RACK.with_density(320)
        assert dense.servers_per_rack == 320
        assert dense.switch_rack_cost_usd == 2750.0
        # Denser rack -> smaller per-server switch share.
        assert dense.switch_cost_per_server_usd < STANDARD_RACK.switch_cost_per_server_usd

    def test_with_density_switch_scaling(self):
        dense = STANDARD_RACK.with_density(320, switch_scale=8.0)
        assert dense.switch_rack_cost_usd == pytest.approx(22_000.0)
        # Per-server share preserved when switch scales with density.
        assert dense.switch_cost_per_server_usd == pytest.approx(68.75)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RackConfig(servers_per_rack=0)
        with pytest.raises(ValueError):
            RackConfig(switch_rack_cost_usd=-1)
