"""Tests of the real-estate cost extension."""

import pytest

from repro.cooling.enclosure import AGGREGATED_MICROBLADE, DUAL_ENTRY_ENCLOSURE
from repro.cooling.rack import pack_rack
from repro.costmodel.rack import STANDARD_RACK
from repro.costmodel.realestate import DEFAULT_REAL_ESTATE, RealEstateModel


class TestRealEstateModel:
    def test_per_rack_cost(self):
        model = RealEstateModel(gross_sqft_per_rack=24.0,
                                cost_per_sqft_cycle_usd=300.0)
        assert model.cost_per_rack_usd == pytest.approx(7200.0)

    def test_per_server_share_standard_rack(self):
        assert DEFAULT_REAL_ESTATE.cost_per_server_usd() == pytest.approx(180.0)

    def test_fleet_cost_rounds_up_to_whole_racks(self):
        model = DEFAULT_REAL_ESTATE
        assert model.fleet_cost_usd(0) == 0.0
        assert model.fleet_cost_usd(1) == model.cost_per_rack_usd
        assert model.fleet_cost_usd(41) == 2 * model.cost_per_rack_usd

    def test_density_savings_from_paper_enclosures(self):
        """Dual-entry (320/rack) cuts per-server floor cost ~8x; the
        microblade design (1250/rack) ~31x."""
        model = DEFAULT_REAL_ESTATE
        dual = pack_rack(DUAL_ENTRY_ENCLOSURE, 78.0).rack_config()
        micro = pack_rack(AGGREGATED_MICROBLADE, 30.0).rack_config()
        assert model.density_savings(dual) == pytest.approx(1 - 40 / 320)
        assert model.density_savings(micro) == pytest.approx(1 - 40 / 1250)

    def test_real_estate_is_small_vs_server_tco_at_standard_density(self):
        """At 40/rack the floor share (~$180) is ~3% of srvr1's TCO --
        consistent with the paper treating it as second-order."""
        share = DEFAULT_REAL_ESTATE.cost_per_server_usd(STANDARD_RACK)
        assert share / 5758 < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            RealEstateModel(gross_sqft_per_rack=0.0)
        with pytest.raises(ValueError):
            RealEstateModel(cost_per_sqft_cycle_usd=-1.0)
        with pytest.raises(ValueError):
            DEFAULT_REAL_ESTATE.fleet_cost_usd(-1)
