"""Tests of the activity-factor power model."""

import pytest

from repro.costmodel.catalog import server_bill
from repro.costmodel.components import Component
from repro.costmodel.power import DEFAULT_ACTIVITY_FACTOR, PowerModel


class TestPowerModel:
    def test_default_activity_factor_is_papers(self):
        assert DEFAULT_ACTIVITY_FACTOR == 0.75

    def test_server_consumed_includes_switch_share(self):
        model = PowerModel()
        bill = server_bill("srvr1")
        with_switch = model.server_consumed_w(bill)
        without = model.server_consumed_w(bill, include_switch=False)
        assert with_switch - without == pytest.approx(0.75 * 1.0)  # 40 W / 40 servers

    def test_srvr1_consumed_power(self):
        # (340 + 1) W * 0.75
        assert PowerModel().server_consumed_w(server_bill("srvr1")) == pytest.approx(
            255.75
        )

    def test_component_power_scaled_by_activity(self):
        consumed = PowerModel().component_consumed_w(server_bill("srvr2"))
        assert consumed[Component.CPU] == pytest.approx(105 * 0.75)
        assert sum(consumed.values()) == pytest.approx(215 * 0.75)

    def test_activity_factor_bounds(self):
        with pytest.raises(ValueError):
            PowerModel(activity_factor=0.0)
        with pytest.raises(ValueError):
            PowerModel(activity_factor=1.5)
        PowerModel(activity_factor=1.0)  # upper bound allowed

    def test_rack_consumed_scales_with_servers(self):
        model = PowerModel()
        bill = server_bill("emb1")
        rack_w = model.rack_consumed_w(bill)
        assert rack_w == pytest.approx((52 * 40 + 40) * 0.75)

    def test_rack_power_paper_observation(self):
        """Section 3.2: srvr1 13.6 kW/rack (nameplate)."""
        model = PowerModel()
        nameplate = model.rack.rack_power_w(server_bill("srvr1").power_w)
        assert nameplate == pytest.approx(13_640.0)

    def test_energy_accumulates_over_hours(self):
        model = PowerModel()
        assert model.energy_wh(100.0, 10.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            model.energy_wh(100.0, -1.0)
