"""Property-based tests on cost-model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.burdened import BurdenedCostParameters, BurdenedPowerCoolingModel
from repro.costmodel.components import Component, ComponentSpec, ServerBill
from repro.costmodel.power import PowerModel
from repro.costmodel.tco import TcoModel

_spec = st.builds(
    ComponentSpec,
    cost_usd=st.floats(min_value=0.0, max_value=10_000.0),
    power_w=st.floats(min_value=0.0, max_value=1_000.0),
)

_bill = st.builds(
    lambda cpu, mem, disk: ServerBill(
        name="prop",
        components={Component.CPU: cpu, Component.MEMORY: mem, Component.DISK: disk},
    ),
    cpu=_spec,
    mem=_spec,
    disk=_spec,
)


class TestTcoProperties:
    @given(bill=_bill)
    @settings(max_examples=80, deadline=None)
    def test_breakdown_sums_are_consistent(self, bill):
        breakdown = TcoModel().breakdown(bill)
        assert breakdown.total_usd == pytest.approx(
            breakdown.hardware_total_usd + breakdown.power_cooling_total_usd
        )
        assert breakdown.hardware_total_usd >= bill.hardware_cost_usd
        if breakdown.total_usd > 0:
            assert sum(breakdown.pie_slices().values()) == pytest.approx(1.0)

    @given(bill=_bill, factor=st.floats(min_value=1.0, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_tco_monotone_in_component_power(self, bill, factor):
        heavier = bill.scaled(cost_factor=1.0, power_factor=factor)
        model = TcoModel()
        assert model.total_usd(heavier) >= model.total_usd(bill) - 1e-9

    @given(bill=_bill)
    @settings(max_examples=60, deadline=None)
    def test_pc_cost_linear_in_tariff(self, bill):
        cheap = TcoModel(
            burdened_model=BurdenedPowerCoolingModel(
                BurdenedCostParameters(tariff_usd_per_mwh=50.0)
            )
        )
        pricey = TcoModel(
            burdened_model=BurdenedPowerCoolingModel(
                BurdenedCostParameters(tariff_usd_per_mwh=150.0)
            )
        )
        assert pricey.power_cooling_usd(bill) == pytest.approx(
            3.0 * cheap.power_cooling_usd(bill), rel=1e-9
        )

    @given(
        bill=_bill,
        low=st.floats(min_value=0.1, max_value=0.9),
        high=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_consumed_power_monotone_in_activity_factor(self, bill, low, high):
        if low > high:
            low, high = high, low
        p_low = PowerModel(activity_factor=low).server_consumed_w(bill)
        p_high = PowerModel(activity_factor=high).server_consumed_w(bill)
        assert p_low <= p_high + 1e-9

    @given(bill=_bill)
    @settings(max_examples=60, deadline=None)
    def test_replace_preserves_untouched_components(self, bill):
        new = bill.replace(cpu=ComponentSpec(1.0, 1.0))
        assert new.cost_of(Component.MEMORY) == bill.cost_of(Component.MEMORY)
        assert new.cost_of(Component.DISK) == bill.cost_of(Component.DISK)
        assert new.cost_of(Component.CPU) == 1.0
