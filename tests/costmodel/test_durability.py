"""Durability math: MTTDL, loss probability, durability-adjusted TCO."""

import math

import pytest

from repro.costmodel.availability import (
    AvailabilityAdjustedTco,
    DurabilityAdjustedTco,
    DurabilityModel,
    RepairCostModel,
)
from repro.costmodel.tco import TcoBreakdown
from repro.faults.model import ComponentType, FaultProfile, FaultSpec
from repro.memsim.redundancy import RedundancyPolicy

#: Easy arithmetic: 10,000 h MTBF, 10 h hardware swap.
BLADE_SPEC = FaultSpec(mtbf_hours=10_000.0, mttr_hours=10.0)

EMPTY_PROFILE = FaultProfile("nothing", {})


class TestGuardRegressions:
    """Edge cases the availability layer must treat as identities."""

    def test_empty_serial_chain_is_always_up(self):
        assert EMPTY_PROFILE.serial_availability([]) == 1.0

    def test_specless_components_contribute_unity(self):
        profile = FaultProfile(
            "one", {ComponentType.SERVER: BLADE_SPEC}
        )
        with_extras = profile.serial_availability(
            [ComponentType.SERVER, ComponentType.FLASH_CACHE]
        )
        alone = profile.serial_availability([ComponentType.SERVER])
        assert with_extras == alone

    def test_empty_components_cost_nothing(self):
        model = RepairCostModel(EMPTY_PROFILE)
        assert model.repair_cost_usd([]) == 0.0
        assert model.effective_availability([]) == 1.0

    def test_zero_server_share_rejected_even_off_path(self):
        # A shared entry with a non-positive split is a configuration
        # error even when that component never appears in the path.
        model = RepairCostModel(EMPTY_PROFILE)
        with pytest.raises(ValueError, match="must be positive"):
            model.repair_cost_usd([], shared={ComponentType.MEMORY_BLADE: 0})
        with pytest.raises(ValueError, match="must be positive"):
            model.repair_cost_usd(
                [ComponentType.SERVER], shared={ComponentType.SERVER: -2}
            )

    def test_zero_mttr_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="MTTR must be positive"):
            FaultSpec(mtbf_hours=1000.0, mttr_hours=0.0)


class TestDurabilityModel:
    def test_unprotected_mttdl_is_mtbf_over_n(self):
        model = DurabilityModel(
            spec=BLADE_SPEC, group_width=4, fault_tolerance=0,
            capacity_overhead=1.0,
        )
        assert model.mttdl_hours == pytest.approx(10_000.0 / 4)

    def test_single_fault_tolerance_formula(self):
        model = DurabilityModel(
            spec=BLADE_SPEC, group_width=3, fault_tolerance=1,
            capacity_overhead=2.0, rebuild_hours=2.0,
        )
        repair = 10.0 + 2.0
        expected = 10_000.0**2 / (3 * 2 * repair)
        assert model.repair_window_hours == repair
        assert model.mttdl_hours == pytest.approx(expected)

    def test_slower_rebuild_costs_durability(self):
        fast = DurabilityModel(
            spec=BLADE_SPEC, group_width=3, fault_tolerance=1,
            capacity_overhead=2.0, rebuild_hours=0.5,
        )
        slow = DurabilityModel(
            spec=BLADE_SPEC, group_width=3, fault_tolerance=1,
            capacity_overhead=2.0, rebuild_hours=50.0,
        )
        assert slow.mttdl_hours < fast.mttdl_hours
        assert slow.data_loss_probability(26_280.0) > (
            fast.data_loss_probability(26_280.0)
        )

    def test_loss_probability_is_exponential_survival(self):
        model = DurabilityModel(
            spec=BLADE_SPEC, group_width=1, fault_tolerance=0,
            capacity_overhead=1.0,
        )
        cycle = 26_280.0
        expected = 1.0 - math.exp(-cycle / 10_000.0)
        assert model.data_loss_probability(cycle) == pytest.approx(expected)
        assert model.durability(cycle) == pytest.approx(1.0 - expected)

    def test_for_policy_replica_and_parity(self):
        replica = DurabilityModel.for_policy(
            BLADE_SPEC, RedundancyPolicy.replicated(2), blades=3
        )
        assert replica.group_width == 3
        assert replica.fault_tolerance == 1
        assert replica.capacity_overhead == 2.0

        parity = DurabilityModel.for_policy(
            BLADE_SPEC, RedundancyPolicy.parity(4)
        )
        assert parity.group_width == 5  # defaults to min_blades
        assert parity.fault_tolerance == 1
        assert parity.capacity_overhead == pytest.approx(1.25)

        bare = DurabilityModel.for_policy(BLADE_SPEC, None, blades=2)
        assert bare.group_width == 2
        assert bare.fault_tolerance == 0
        assert bare.redundancy_capex_usd(1000.0) == 0.0

    def test_protection_beats_unprotected_by_orders_of_magnitude(self):
        bare = DurabilityModel.for_policy(BLADE_SPEC, None)
        replica = DurabilityModel.for_policy(
            BLADE_SPEC, RedundancyPolicy.replicated(2), blades=3
        )
        assert replica.mttdl_hours > 100 * bare.mttdl_hours

    def test_validation(self):
        with pytest.raises(ValueError):
            DurabilityModel(
                spec=BLADE_SPEC, group_width=0, fault_tolerance=0,
                capacity_overhead=1.0,
            )
        with pytest.raises(ValueError):
            DurabilityModel(
                spec=BLADE_SPEC, group_width=2, fault_tolerance=2,
                capacity_overhead=1.0,
            )
        with pytest.raises(ValueError):
            DurabilityModel(
                spec=BLADE_SPEC, group_width=2, fault_tolerance=1,
                capacity_overhead=0.5,
            )
        with pytest.raises(ValueError):
            DurabilityModel(
                spec=BLADE_SPEC, group_width=2, fault_tolerance=1,
                capacity_overhead=2.0, rebuild_hours=-1.0,
            )


def _breakdown():
    return TcoBreakdown(
        system="toy",
        hardware_usd={"memory": 400.0, "cpu": 600.0},
        power_cooling_usd={"power": 200.0},
        server_power_w=100.0,
        consumed_power_w=80.0,
    )


class TestDurabilityAdjustedTco:
    def test_totals_stack_redundant_capacity_on_adjusted_tco(self):
        adjusted = AvailabilityAdjustedTco(
            _breakdown(), repair_usd=50.0, availability=0.99
        )
        model = DurabilityModel.for_policy(
            BLADE_SPEC, RedundancyPolicy.replicated(2), blades=3
        )
        tco = DurabilityAdjustedTco(
            adjusted=adjusted, durability_model=model,
            memory_capex_usd=400.0,
        )
        # 2-replica doubles the remote slice: +100% of its capex.
        assert tco.redundancy_capex_usd == pytest.approx(400.0)
        assert tco.total_usd == pytest.approx(1250.0 + 400.0)

    def test_metric_weighs_availability_and_durability(self):
        adjusted = AvailabilityAdjustedTco(
            _breakdown(), repair_usd=0.0, availability=0.9
        )
        model = DurabilityModel.for_policy(BLADE_SPEC, None)
        tco = DurabilityAdjustedTco(
            adjusted=adjusted, durability_model=model,
            memory_capex_usd=400.0,
        )
        cycle = 26_280.0
        expected = 100.0 * 0.9 * model.durability(cycle) / tco.total_usd
        assert tco.durability_weighted_perf_per_tco(
            100.0, cycle
        ) == pytest.approx(expected)

    def test_unprotected_pays_no_premium_but_eats_the_discount(self):
        adjusted = AvailabilityAdjustedTco(
            _breakdown(), repair_usd=0.0, availability=1.0
        )
        bare = DurabilityAdjustedTco(
            adjusted=adjusted,
            durability_model=DurabilityModel.for_policy(BLADE_SPEC, None),
            memory_capex_usd=400.0,
        )
        protected = DurabilityAdjustedTco(
            adjusted=adjusted,
            durability_model=DurabilityModel.for_policy(
                BLADE_SPEC, RedundancyPolicy.parity(4)
            ),
            memory_capex_usd=400.0,
        )
        assert bare.total_usd < protected.total_usd
        # Over a long cycle the bare arm's loss probability dominates
        # the modest parity premium: protection wins the metric.
        assert protected.durability_weighted_perf_per_tco(
            100.0, cycle_hours=50_000.0
        ) > bare.durability_weighted_perf_per_tco(
            100.0, cycle_hours=50_000.0
        )

    def test_negative_inputs_rejected(self):
        adjusted = AvailabilityAdjustedTco(
            _breakdown(), repair_usd=0.0, availability=1.0
        )
        model = DurabilityModel.for_policy(BLADE_SPEC, None)
        with pytest.raises(ValueError):
            DurabilityAdjustedTco(
                adjusted=adjusted, durability_model=model,
                memory_capex_usd=-1.0,
            )
        tco = DurabilityAdjustedTco(
            adjusted=adjusted, durability_model=model,
            memory_capex_usd=0.0,
        )
        with pytest.raises(ValueError):
            tco.durability_weighted_perf_per_tco(-5.0)
        with pytest.raises(ValueError):
            model.data_loss_probability(-1.0)
        with pytest.raises(ValueError):
            model.redundancy_capex_usd(-1.0)
