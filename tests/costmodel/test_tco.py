"""Tests of the TCO model and its Figure 1 validation."""

import pytest

from repro.costmodel.catalog import server_bill
from repro.costmodel.tco import CostCategory, TcoModel


@pytest.fixture(scope="module")
def model():
    return TcoModel()


class TestTcoBreakdown:
    def test_totals_are_consistent(self, model):
        b = model.breakdown(server_bill("srvr2"))
        assert b.total_usd == pytest.approx(
            b.hardware_total_usd + b.power_cooling_total_usd
        )

    def test_hardware_includes_rack_share(self, model):
        b = model.breakdown(server_bill("srvr2"))
        assert b.hardware_usd["rack+switch"] == pytest.approx(68.75)
        assert b.hardware_total_usd == pytest.approx(1620 + 68.75)

    def test_paper_totals(self, model):
        """Figure 1(a): srvr1 total $5,758, srvr2 total $3,249."""
        srvr1 = model.breakdown(server_bill("srvr1"))
        srvr2 = model.breakdown(server_bill("srvr2"))
        assert srvr1.total_usd == pytest.approx(5758, abs=10)
        assert srvr2.total_usd == pytest.approx(3249, abs=10)

    def test_pie_slices_sum_to_one(self, model):
        slices = model.breakdown(server_bill("srvr2")).pie_slices()
        assert sum(slices.values()) == pytest.approx(1.0)

    def test_paper_pie_landmarks(self, model):
        """Figure 1(b): CPU HW ~20%, CPU P&C ~22% are the largest slices."""
        b = model.breakdown(server_bill("srvr2"))
        cpu_hw = b.share("cpu", CostCategory.HARDWARE)
        cpu_pc = b.share("cpu", CostCategory.POWER_COOLING)
        assert cpu_hw == pytest.approx(0.20, abs=0.02)
        assert cpu_pc == pytest.approx(0.22, abs=0.02)
        others = [
            v
            for (label, _), v in b.pie_slices().items()
            if label != "cpu"
        ]
        assert max(others) < max(cpu_hw, cpu_pc)

    def test_pc_comparable_to_hardware(self, model):
        """Paper: 'power and cooling costs are comparable to hardware costs'."""
        b = model.breakdown(server_bill("srvr2"))
        ratio = b.power_cooling_total_usd / b.hardware_total_usd
        assert 0.5 < ratio < 1.5

    def test_share_of_unknown_label_is_zero(self, model):
        b = model.breakdown(server_bill("srvr1"))
        assert b.share("gpu", CostCategory.HARDWARE) == 0.0


class TestTcoModelConvenience:
    def test_convenience_accessors_agree_with_breakdown(self, model):
        bill = server_bill("desk")
        b = model.breakdown(bill)
        assert model.total_usd(bill) == pytest.approx(b.total_usd)
        assert model.infrastructure_usd(bill) == pytest.approx(b.hardware_total_usd)
        assert model.power_cooling_usd(bill) == pytest.approx(
            b.power_cooling_total_usd
        )

    def test_cheaper_systems_have_lower_tco(self, model):
        order = ["srvr1", "srvr2", "desk", "emb1", "emb2"]
        tcos = [model.total_usd(server_bill(n)) for n in order]
        assert tcos == sorted(tcos, reverse=True)
