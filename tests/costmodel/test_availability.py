"""Tests of repair-cost and availability-adjusted TCO accounting."""

import pytest

from repro.costmodel.availability import (
    AvailabilityAdjustedTco,
    DEFAULT_INCIDENT_COST_USD,
    RepairCostModel,
    availability_weighted_perf_per_tco,
)
from repro.costmodel.catalog import server_bill
from repro.costmodel.tco import TcoModel
from repro.faults.model import (
    ComponentType,
    DEFAULT_FAULT_PROFILE,
    FaultProfile,
    FaultSpec,
)

#: Toy profile with easy arithmetic: 10 failures/cycle at 99% up, and
#: 1 failure/cycle at 90% up (cycle = 26,280 h).
TOY = FaultProfile(
    "toy",
    {
        ComponentType.SERVER: FaultSpec(mtbf_hours=2_628.0, mttr_hours=26.54),
        ComponentType.MEMORY_BLADE: FaultSpec(
            mtbf_hours=26_280.0, mttr_hours=2_920.0
        ),
    },
)


class TestRepairCostModel:
    def test_repair_cost_sums_incidents(self):
        model = RepairCostModel(
            TOY,
            incident_cost_usd={
                ComponentType.SERVER: 100.0,
                ComponentType.MEMORY_BLADE: 300.0,
            },
        )
        cost = model.repair_cost_usd(
            [ComponentType.SERVER, ComponentType.MEMORY_BLADE]
        )
        assert cost == pytest.approx(10 * 100.0 + 1 * 300.0)

    def test_shared_component_splits_its_bill(self):
        model = RepairCostModel(
            TOY, incident_cost_usd={ComponentType.MEMORY_BLADE: 300.0}
        )
        solo = model.repair_cost_usd([ComponentType.MEMORY_BLADE])
        shared = model.repair_cost_usd(
            [ComponentType.MEMORY_BLADE], shared={ComponentType.MEMORY_BLADE: 8}
        )
        assert shared == pytest.approx(solo / 8)

    def test_unlisted_component_is_free(self):
        model = RepairCostModel(TOY)
        assert model.repair_cost_usd([ComponentType.NIC]) == 0.0

    def test_share_validation(self):
        model = RepairCostModel(TOY)
        with pytest.raises(ValueError, match="share"):
            model.repair_cost_usd(
                [ComponentType.SERVER], shared={ComponentType.SERVER: 0}
            )
        with pytest.raises(ValueError, match="cycle"):
            RepairCostModel(TOY, cycle_hours=0.0)

    def test_effective_availability_series(self):
        model = RepairCostModel(TOY)
        avail = model.effective_availability(
            [ComponentType.SERVER, ComponentType.MEMORY_BLADE]
        )
        assert avail == pytest.approx(0.99 * 0.9, rel=1e-3)

    def test_degraded_component_earns_partial_credit(self):
        model = RepairCostModel(TOY)
        hard = model.effective_availability([ComponentType.MEMORY_BLADE])
        soft = model.effective_availability(
            [ComponentType.MEMORY_BLADE],
            degraded={ComponentType.MEMORY_BLADE: 0.5},
        )
        full = model.effective_availability(
            [ComponentType.MEMORY_BLADE],
            degraded={ComponentType.MEMORY_BLADE: 1.0},
        )
        assert hard < soft < full == 1.0
        assert soft == pytest.approx(0.9 + 0.1 * 0.5, rel=1e-3)

    def test_degraded_credit_validation(self):
        model = RepairCostModel(TOY)
        with pytest.raises(ValueError, match="degraded"):
            model.effective_availability(
                [ComponentType.MEMORY_BLADE],
                degraded={ComponentType.MEMORY_BLADE: 1.5},
            )

    def test_default_incident_costs_cover_every_component(self):
        for ctype in ComponentType:
            assert DEFAULT_INCIDENT_COST_USD[ctype] > 0


class TestAvailabilityAdjustedTco:
    def _adjusted(self):
        breakdown = TcoModel().breakdown(server_bill("emb1"))
        model = RepairCostModel(DEFAULT_FAULT_PROFILE)
        components = [
            ComponentType.SERVER,
            ComponentType.DISK,
            ComponentType.NIC,
            ComponentType.MEMORY_BLADE,
        ]
        metric, adjusted = availability_weighted_perf_per_tco(
            1.0,
            breakdown,
            model,
            components,
            shared={ComponentType.MEMORY_BLADE: 8},
            degraded={ComponentType.MEMORY_BLADE: 0.7},
        )
        return metric, adjusted, breakdown

    def test_total_includes_repair(self):
        _, adjusted, breakdown = self._adjusted()
        assert adjusted.repair_usd > 0
        assert adjusted.total_usd == pytest.approx(
            breakdown.total_usd + adjusted.repair_usd
        )

    def test_weighted_metric_is_discounted(self):
        metric, adjusted, breakdown = self._adjusted()
        assert 0.0 < adjusted.availability < 1.0
        assert metric < 1.0 / breakdown.total_usd
        assert metric == pytest.approx(
            adjusted.availability / adjusted.total_usd
        )

    def test_downtime_hours(self):
        _, adjusted, _ = self._adjusted()
        hours = adjusted.downtime_hours_per_cycle()
        assert hours == pytest.approx(adjusted.downtime_fraction * 26_280.0)
        assert 0.0 < hours < 100.0

    def test_tco_model_entry_point(self):
        model = TcoModel()
        adjusted = model.availability_adjusted(
            server_bill("srvr1"),
            RepairCostModel(DEFAULT_FAULT_PROFILE),
            [ComponentType.SERVER, ComponentType.DISK],
        )
        assert isinstance(adjusted, AvailabilityAdjustedTco)
        assert adjusted.total_usd > model.total_usd(server_bill("srvr1"))

    def test_validation(self):
        breakdown = TcoModel().breakdown(server_bill("srvr1"))
        with pytest.raises(ValueError):
            AvailabilityAdjustedTco(breakdown, repair_usd=-1.0, availability=1.0)
        with pytest.raises(ValueError):
            AvailabilityAdjustedTco(breakdown, repair_usd=0.0, availability=0.0)
        adjusted = AvailabilityAdjustedTco(
            breakdown, repair_usd=0.0, availability=1.0
        )
        with pytest.raises(ValueError):
            adjusted.availability_weighted_perf_per_tco(-1.0)
