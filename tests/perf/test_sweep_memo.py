"""Cross-instance sweep memoization must be invisible in SweepResult."""

import pytest

import repro.simulator.sweep as sweep_module
from repro.platforms.catalog import platform
from repro.simulator.server_sim import SimConfig
from repro.simulator.sweep import QosSweep, clear_sweep_memo


@pytest.fixture
def config():
    return SimConfig(warmup_requests=50, measure_requests=300, seed=9)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_sweep_memo()
    yield
    clear_sweep_memo()


def _count_runs(monkeypatch):
    """Patch ServerSimulator.run to count actual simulations."""
    calls = []
    real_run = sweep_module.ServerSimulator.run

    def counting(self):
        calls.append(1)
        return real_run(self)

    monkeypatch.setattr(sweep_module.ServerSimulator, "run", counting)
    return calls


class TestSweepMemo:
    def test_second_sweep_identical_without_resimulating(self, config, monkeypatch):
        calls = _count_runs(monkeypatch)
        first = QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        cold_runs = len(calls)
        assert cold_runs > 0
        second = QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        assert len(calls) == cold_runs  # every point came from the memo
        assert second.best == first.best
        assert second.population == first.population
        assert second.evaluations == first.evaluations

    def test_clear_forces_resimulation(self, config, monkeypatch):
        calls = _count_runs(monkeypatch)
        QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        cold_runs = len(calls)
        clear_sweep_memo()
        QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        assert len(calls) == 2 * cold_runs

    def test_distinct_platforms_do_not_collide(self, config):
        a = QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        b = QosSweep(platform("srvr2"), _webmail(), config=config).find_peak()
        assert a.best != b.best

    def test_memory_slowdown_part_of_key(self, config):
        base = QosSweep(platform("desk"), _webmail(), config=config).find_peak()
        slowed = QosSweep(
            platform("desk"), _webmail(), config=config, memory_slowdown=2.0
        ).find_peak()
        assert slowed.best != base.best


def _webmail():
    from repro.workloads.suite import make_workload

    return make_workload("webmail")
