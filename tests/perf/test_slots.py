"""Hot-path records must stay dict-free (the alloc benchmark's premise)."""

import random

import pytest

from repro.cluster.balancer import _Attempt, _RequestState
from repro.cluster.overload import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    RetryBudget,
    RetryBudgetPolicy,
    TokenBucket,
)
from repro.simulator.telemetry import TimeSeries


class TestBalancerRecords:
    def test_request_state_has_no_dict(self):
        rs = _RequestState(demand=1.5, start=0.0)
        with pytest.raises(AttributeError):
            rs.__dict__
        with pytest.raises(AttributeError):
            rs.unknown_field = 1

    def test_attempt_has_no_dict(self):
        attempt = _Attempt(server=None, epoch=0, probe=False)
        with pytest.raises(AttributeError):
            attempt.__dict__
        assert attempt.timer == 0 and attempt.hedge_timer == 0
        assert not attempt.void and not attempt.done


class TestOverloadRecords:
    def test_all_slotted(self):
        instances = [
            TokenBucket(rate_per_s=10.0, burst=5.0),
            AdmissionController(AdmissionPolicy(), slo_ms=100.0, rng=random.Random(1)),
            RetryBudget(RetryBudgetPolicy()),
            CircuitBreaker(BreakerPolicy()),
        ]
        for obj in instances:
            with pytest.raises(AttributeError):
                obj.__dict__


class TestTimeSeries:
    def test_slotted(self):
        ts = TimeSeries(bucket_ms=10.0)
        with pytest.raises(AttributeError):
            ts.__dict__

    def test_content_equality(self):
        a, b = TimeSeries(bucket_ms=10.0), TimeSeries(bucket_ms=10.0)
        a.record(5.0, 1.0)
        assert a != b
        b.record(5.0, 1.0)
        assert a == b
        assert a != TimeSeries(bucket_ms=20.0)

    def test_bucket_ms_validated(self):
        with pytest.raises(ValueError):
            TimeSeries(bucket_ms=0.0)
