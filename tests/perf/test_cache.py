"""Result cache: round-trips, key sensitivity, and corruption tolerance."""

import pickle

import pytest

import repro.perf.cache as cache_module
from repro.perf.cache import CACHE_DIR_ENV, ResultCache, code_fingerprint, default_cache_dir


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_returns_none(self, cache):
        assert cache.get(cache.key("figure5")) is None

    def test_put_then_get(self, cache):
        key = cache.key("figure5", {"method": "sim"})
        cache.put(key, {"payload": [1, 2, 3]})
        assert cache.get(key) == {"payload": [1, 2, 3]}

    def test_clear_removes_entries(self, cache):
        for name in ("a", "b"):
            cache.put(cache.key(name), name)
        assert cache.clear() == 2
        assert cache.get(cache.key("a")) is None


class TestKeys:
    def test_key_distinguishes_names(self, cache):
        assert cache.key("figure5") != cache.key("table1")

    def test_key_distinguishes_params(self, cache):
        assert cache.key("x", {"method": "sim"}) != cache.key("x", {"method": "analytic"})
        assert cache.key("x", {"servers": 3}) != cache.key("x", {"servers": 4})

    def test_key_ignores_param_order(self, cache):
        assert cache.key("x", {"a": 1, "b": 2}) == cache.key("x", {"b": 2, "a": 1})

    def test_key_changes_with_code_fingerprint(self, cache, monkeypatch):
        before = cache.key("figure5")
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "0" * 64)
        assert cache.key("figure5") != before

    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestRobustness:
    def test_corrupt_entry_treated_as_miss_and_removed(self, cache):
        key = cache.key("broken")
        cache.put(key, "good")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_truncated_pickle_treated_as_miss(self, cache):
        key = cache.key("short")
        cache.put(key, list(range(100)))
        path = cache._path(key)
        path.write_bytes(pickle.dumps(list(range(100)))[:10])
        assert cache.get(key) is None

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().directory == tmp_path / "elsewhere"
