"""Parallel fan-out: order preservation, nesting guard, cached runs."""

import pytest

import repro.perf.parallel as parallel_module
from repro.perf.cache import ResultCache
from repro.perf.parallel import (
    chunked,
    default_jobs,
    in_worker,
    intra_jobs,
    pmap,
    pmap_iter,
    run_experiments,
    set_intra_jobs,
)


def _square(x):
    return x * x


class TestPmap:
    def test_serial_path_matches_comprehension(self):
        assert pmap(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert pmap(_square, items, jobs=4) == [x * x for x in items]

    def test_single_item_runs_inline(self):
        assert pmap(_square, [7], jobs=8) == [49]

    def test_worker_flag_forces_serial(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "_IN_WORKER", True)
        assert in_worker()
        assert pmap(_square, [1, 2, 3], jobs=4) == [1, 4, 9]

    def test_empty_input(self):
        assert pmap(_square, [], jobs=4) == []


def _die_on_three(x):
    # Kill the worker process outright (not an exception): in the
    # parent, in_worker() is False, so the serial retry just computes.
    if x == 3 and in_worker():
        import os

        os._exit(1)
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestPmapWorkerCrash:
    def test_dead_worker_items_are_recomputed_serially(self):
        items = list(range(6))
        with pytest.warns(RuntimeWarning, match="worker died"):
            results = pmap(_die_on_three, items, jobs=2)
        assert results == [x * x for x in items]

    def test_fn_exceptions_propagate_without_retry(self):
        with pytest.raises(ValueError, match="three is right out"):
            pmap(_raise_on_three, list(range(6)), jobs=2)


class TestPmapIter:
    def test_serial_path_matches_comprehension(self):
        assert list(pmap_iter(_square, [3, 1, 2], jobs=1)) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        items = list(range(25))
        assert list(pmap_iter(_square, items, jobs=4)) == [x * x for x in items]

    def test_streams_lazily_in_serial_mode(self):
        consumed = []

        def noting(x):
            consumed.append(x)
            return x

        gen = pmap_iter(noting, [1, 2, 3], jobs=1)
        assert next(gen) == 1
        assert consumed == [1]  # later items not yet computed

    def test_no_nested_pools_guard(self, monkeypatch):
        """Inside a worker, pmap_iter must never open a sub-pool."""
        monkeypatch.setattr(parallel_module, "_IN_WORKER", True)

        def forbidden(jobs):
            raise AssertionError("a worker tried to spawn a nested pool")

        monkeypatch.setattr(parallel_module, "_pool", forbidden)
        assert list(pmap_iter(_square, [1, 2, 3], jobs=8)) == [1, 4, 9]

    def test_empty_input(self):
        assert list(pmap_iter(_square, [], jobs=4)) == []

    def test_dead_worker_items_are_recomputed_serially(self):
        items = list(range(6))
        with pytest.warns(RuntimeWarning, match="worker died"):
            results = list(pmap_iter(_die_on_three, items, jobs=2))
        assert results == [x * x for x in items]

    def test_fn_exceptions_propagate_without_retry(self):
        with pytest.raises(ValueError, match="three is right out"):
            list(pmap_iter(_raise_on_three, list(range(6)), jobs=2))


class TestIntraJobs:
    def test_set_and_read(self):
        try:
            set_intra_jobs(3)
            assert intra_jobs() == 3
        finally:
            set_intra_jobs(1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_intra_jobs(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestRunExperiments:
    # table1 is analytic-only and fast; a good smoke target.
    def test_results_in_request_order(self):
        results = run_experiments(["table2", "table1"], jobs=1)
        assert [name for name, _ in results] == ["table2", "table1"]
        assert all(result is not None for _, result in results)

    def test_cache_hit_skips_recompute(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        first = run_experiments(["table1"], jobs=1, cache=cache)
        calls = []
        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment

        def counting(name, method="sim", **kw):
            calls.append(name)
            return real(name, method=method, **kw)

        monkeypatch.setattr(runner_module, "run_experiment", counting)
        second = run_experiments(["table1"], jobs=1, cache=cache)
        assert calls == []
        assert first[0][1].payload_digest() == second[0][1].payload_digest()

    def test_overrides_produce_distinct_cache_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("availability", {})
        tweaked = cache.key("availability", {"servers": 3})
        assert base != tweaked


class TestMergeTelemetry:
    def test_folds_shards_in_order(self):
        from repro.obs import MetricsRegistry
        from repro.perf.parallel import merge_telemetry

        shards = []
        for amount in (1.0, 2.0, 4.0):
            registry = MetricsRegistry()
            registry.counter("served").inc(amount)
            shards.append(registry)
        combined = merge_telemetry(shards)
        assert combined.value("served") == 7.0
        # The shards themselves are untouched (first one deep-copied).
        assert shards[0].value("served") == 1.0

    def test_skips_missing_shards(self):
        from repro.simulator.telemetry import LatencyHistogram
        from repro.perf.parallel import merge_telemetry

        left, right = LatencyHistogram(), LatencyHistogram()
        left.record(10.0)
        right.record(1000.0)
        combined = merge_telemetry([None, left, None, right])
        assert combined.count == 2
        assert left.count == 1  # input shard not mutated

    def test_all_missing_gives_none(self):
        from repro.perf.parallel import merge_telemetry

        assert merge_telemetry([]) is None
        assert merge_telemetry([None, None]) is None
