"""The vectorized trace kernels against their scalar oracles.

The contract is *exactness*, not approximation: every counter the
single-pass kernels report must equal the scalar replay bit for bit --
on random traces and on every real workload trace the experiments use.
"""

import numpy as np
import pytest

from repro.flashcache.cache import FlashCache
from repro.memsim.replacement import LruPolicy
from repro.memsim.trace import WORKLOAD_TRACES, cached_trace
from repro.memsim.twolevel import (
    TwoLevelMemorySimulator,
    lru_fraction_sweep,
    lru_miss_curve,
)
from repro.perf.kernels import (
    FIRST_TOUCH,
    _flash_replay_scalar,
    flash_hit_curve,
    flash_replay,
    miss_ratio_curve,
    prev_greater_counts,
    previous_occurrences,
    stack_distances,
)
from repro.platforms.storage import FLASH_1GB

#: Shortened trace for the workload-equality sweep (full Figure 4 runs
#: are exercised in tests/experiments; the kernels are length-agnostic).
TRACE_LENGTH = 60_000


def _brute_distances(trace):
    from collections import OrderedDict

    stack = OrderedDict()
    dist = np.zeros(len(trace), dtype=np.int64)
    first = np.zeros(len(trace), dtype=bool)
    for i, page in enumerate(trace):
        page = int(page)
        if page in stack:
            dist[i] = list(reversed(stack.keys())).index(page) + 1
            stack.move_to_end(page)
        else:
            dist[i] = FIRST_TOUCH
            first[i] = True
            stack[page] = None
    return dist, first


class TestPrimitives:
    def test_previous_occurrences(self):
        trace = np.array([3, 1, 3, 3, 1, 2], dtype=np.int64)
        expected = np.array([-1, -1, 0, 2, 1, -1], dtype=np.int64)
        assert np.array_equal(previous_occurrences(trace), expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_prev_greater_counts_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        values = rng.integers(-1, 50, size=n).astype(np.int64)
        expected = np.array(
            [sum(1 for j in range(i) if values[j] > values[i]) for i in range(n)],
            dtype=np.int64,
        )
        assert np.array_equal(prev_greater_counts(values), expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_prev_greater_counts_masked(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 300))
        values = rng.integers(-1, 50, size=n).astype(np.int64)
        mask = rng.random(n) < 0.6
        expected = np.array(
            [
                sum(1 for j in range(i) if mask[j] and values[j] > values[i])
                for i in range(n)
            ],
            dtype=np.int64,
        )
        assert np.array_equal(prev_greater_counts(values, counted=mask), expected)

    def test_empty_input(self):
        assert prev_greater_counts(np.array([], dtype=np.int64)).size == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_stack_distances_brute_force(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(1, 400))
        trace = rng.integers(0, int(rng.integers(1, 40)), size=n).astype(np.int64)
        dist, first = stack_distances(trace)
        want_dist, want_first = _brute_distances(trace)
        assert np.array_equal(first, want_first)
        assert np.array_equal(dist, want_dist)

    def test_distance_answers_lru_hits(self):
        """dist[i] <= C iff the access hits an LRU cache of capacity C."""
        rng = np.random.default_rng(5)
        trace = rng.integers(0, 30, size=500).astype(np.int64)
        dist, _ = stack_distances(trace)
        for capacity in (1, 3, 7, 16, 40):
            policy = LruPolicy(capacity)
            hits = np.array([policy.access(int(p)) for p in trace])
            assert np.array_equal(dist <= capacity, hits)


class TestMissRatioCurve:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_TRACES))
    @pytest.mark.parametrize("fraction", (0.25, 0.125))
    def test_exact_equality_with_scalar_simulator(self, workload, fraction):
        """The tentpole contract: identical MissStats for every workload
        x fraction the Figure 4 sweep evaluates."""
        sim = TwoLevelMemorySimulator(
            WORKLOAD_TRACES[workload], fraction, policy="lru"
        )
        kernel = sim.run(TRACE_LENGTH)
        scalar = sim.run(TRACE_LENGTH, engine="scalar")
        assert kernel == scalar

    def test_miss_curve_monotonically_non_increasing(self):
        spec = WORKLOAD_TRACES["webmail"]
        curve = lru_miss_curve(spec, TRACE_LENGTH)
        capacities = np.arange(1, spec.footprint_pages + 100, 37)
        misses = curve.misses(capacities)
        assert np.all(np.diff(misses) <= 0)
        assert misses[-1] == 0  # cache bigger than the footprint

    def test_eviction_curve_monotone_and_consistent(self):
        curve = lru_miss_curve(WORKLOAD_TRACES["webmail"], TRACE_LENGTH)
        capacities = np.arange(1, 20_000, 113)
        evictions = curve.evictions(capacities)
        assert np.all(np.diff(evictions) <= 0)
        writebacks = curve.writebacks(capacities)
        assert np.all(writebacks >= 0)
        assert np.all(writebacks <= evictions)

    def test_fraction_sweep_matches_individual_runs(self):
        spec = WORKLOAD_TRACES["mapred-wc"]
        fractions = (0.5, 0.25, 0.125, 0.0625)
        sweep = lru_fraction_sweep(spec, fractions, trace_length=TRACE_LENGTH)
        for fraction in fractions:
            sim = TwoLevelMemorySimulator(spec, fraction, policy="lru")
            assert sweep[fraction] == sim.run(TRACE_LENGTH, engine="scalar")

    def test_random_policy_keeps_scalar_path(self):
        """Random replacement has no stack property; the kernel engine
        must refuse it rather than silently approximate."""
        sim = TwoLevelMemorySimulator(
            WORKLOAD_TRACES["webmail"], 0.25, policy="random"
        )
        with pytest.raises(ValueError, match="exact LRU"):
            sim.run(10_000, engine="kernel")
        assert sim.run(10_000) == sim.run(10_000, engine="scalar")

    def test_unknown_engine_rejected(self):
        sim = TwoLevelMemorySimulator(WORKLOAD_TRACES["webmail"], 0.25)
        with pytest.raises(ValueError, match="engine"):
            sim.run(10_000, engine="turbo")

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            miss_ratio_curve(np.array([1, 2, 3]), warmup=7)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_any_warmup(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(20, 400))
        trace = rng.integers(0, int(rng.integers(2, 50)), size=n).astype(np.int64)
        warmup = int(rng.integers(0, n))
        curve = miss_ratio_curve(trace, warmup=warmup)
        for capacity in (1, 2, 5, 11, 29, 64):
            policy = LruPolicy(capacity)
            seen = set()
            misses = 0
            evictions_at_window = 0
            for i, page in enumerate(trace):
                page = int(page)
                if i == warmup:
                    evictions_at_window = policy.evictions
                first_touch = page not in seen
                seen.add(page)
                hit = policy.access(page)
                if i >= warmup and not hit and not first_touch:
                    misses += 1
            counts = curve.counts(capacity)
            assert counts.misses == misses
            assert counts.evictions == policy.evictions
            assert counts.writebacks == policy.evictions - evictions_at_window


class TestFlashKernels:
    def _cache(self, capacity_objects):
        # One object == one "GB" so capacity_objects is exact.
        import dataclasses

        device = dataclasses.replace(
            FLASH_1GB, capacity_gb=float(capacity_objects)
        )
        return FlashCache(device, object_bytes=float(1 << 30))

    @pytest.mark.parametrize("seed", range(6))
    def test_hit_curve_equals_flashcache_on_read_stream(self, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(50, 800))
        stream = rng.integers(0, int(rng.integers(5, 80)), size=n).astype(np.int64)
        curve = flash_hit_curve(stream)
        for capacity in (1, 3, 10, 40):
            stats = self._cache(capacity).replay(stream)
            counts = curve.counts(capacity)
            assert counts.lookups == stats.lookups
            assert counts.hits == stats.hits
            assert counts.insertions == stats.insertions
            assert counts.evictions == stats.evictions
            assert counts.block_writes == stats.block_writes

    @pytest.mark.parametrize("seed", range(6))
    def test_flash_replay_equals_flashcache_with_writes(self, seed):
        rng = np.random.default_rng(500 + seed)
        n = int(rng.integers(50, 500))
        stream = rng.integers(0, int(rng.integers(5, 60)), size=n).astype(np.int64)
        writes = rng.random(n) < rng.uniform(0.0, 0.5)
        for capacity in (2, 7, 25):
            stats = self._cache(capacity).replay(stream, writes)
            counts = flash_replay(stream, writes, capacity)
            assert counts.lookups == stats.lookups
            assert counts.hits == stats.hits
            assert counts.insertions == stats.insertions
            assert counts.evictions == stats.evictions
            assert counts.block_writes == stats.block_writes

    def test_flash_replay_fallback_is_exact(self):
        """Force the scalar fallback (max_iterations=0 budget exhausted)
        and check it matches the fixed-point path."""
        rng = np.random.default_rng(9)
        stream = rng.integers(0, 20, size=300).astype(np.int64)
        writes = rng.random(300) < 0.3
        fixed_point = flash_replay(stream, writes, 7)
        fallback = flash_replay(stream, writes, 7, max_iterations=0)
        assert fixed_point == fallback
        assert fallback == _flash_replay_scalar(stream, writes, 7)

    def test_flash_replay_validation(self):
        with pytest.raises(ValueError):
            flash_replay(np.array([1, 2]), np.array([False]), 4)
        with pytest.raises(ValueError):
            flash_replay(np.array([1, 2]), np.array([False, True]), 0)

    def test_empty_stream(self):
        counts = flash_replay(
            np.array([], dtype=np.int64), np.array([], dtype=bool), 4
        )
        assert counts.lookups == 0 and counts.block_writes == 0


class TestTraceMemoization:
    def test_cached_trace_is_generate_trace(self):
        from repro.memsim.trace import generate_trace

        spec = WORKLOAD_TRACES["webmail"]
        assert np.array_equal(
            cached_trace(spec, 20_000, seed=3), generate_trace(spec, 20_000, seed=3)
        )

    def test_cached_trace_returns_same_object(self):
        spec = WORKLOAD_TRACES["webmail"]
        a = cached_trace(spec, 10_000, seed=0)
        b = cached_trace(spec, 10_000, seed=0)
        assert a is b

    def test_cached_trace_is_read_only(self):
        trace = cached_trace(WORKLOAD_TRACES["webmail"], 10_000, seed=0)
        with pytest.raises(ValueError):
            trace[0] = 1

    def test_trace_chunks_reassemble_exactly(self):
        from repro.memsim.trace import trace_chunks

        spec = WORKLOAD_TRACES["webmail"]
        chunks = list(trace_chunks(spec, 10_000, seed=1, chunk=1024))
        assert sum(len(c) for c in chunks) == 10_000
        assert np.array_equal(
            np.concatenate(chunks), cached_trace(spec, 10_000, seed=1)
        )

    def test_trace_chunks_validation(self):
        from repro.memsim.trace import trace_chunks

        with pytest.raises(ValueError):
            list(trace_chunks(WORKLOAD_TRACES["webmail"], 100, chunk=0))

    def test_curve_memoized_across_callers(self):
        spec = WORKLOAD_TRACES["webmail"]
        assert lru_miss_curve(spec, 10_000) is lru_miss_curve(spec, 10_000)
