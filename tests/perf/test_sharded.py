"""Sharded engine: shard-count invariance, vectorization bit-equality,
and the calibrated hybrid fast path's accuracy envelope.

The invariance scenarios mirror the repository's overload (EXT-10,
surge through a capped queue) and fail-slow (EXT-12, one gray server)
experiment shapes at reduced scale, on both layers: the rack-scenario
engine (scalar oracle vs vectorized cohorts) and the cell-partitioned
``ShardedClusterSimulator`` (full balancer per cell).
"""

import pytest

from repro.cluster.balancer import ClusterSimulator
from repro.cluster.overload import OverloadPolicy, SurgeSchedule
from repro.faults.failslow import FailSlowPlan
from repro.perf.sharded import (
    HYBRID_TOLERANCE,
    RackScenario,
    ShardedClusterSimulator,
    derive_seed,
    run_rack,
)
from repro.platforms.catalog import platform
from repro.workloads.suite import make_workload


def _make_webmail():
    """Module-level workload factory (must be picklable for workers)."""
    return make_workload("webmail")


SURGE = RackScenario(
    servers_per_cell=4,
    cells=4,
    rate_rps=900.0,
    service_ms=0.5,
    duration_ms=500.0,
    window_ms=50.0,
    deadline_ms=6.0,
    surge=(3.0, 150.0, 300.0),
    queue_cap=64,
    seed=11,
)

FAILSLOW = RackScenario(
    servers_per_cell=4,
    cells=4,
    rate_rps=900.0,
    service_ms=0.5,
    duration_ms=500.0,
    window_ms=50.0,
    deadline_ms=6.0,
    failslow=(1, 2, 6.0, 100.0, 350.0),
    seed=13,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 1, 2, 3) == derive_seed(7, 1, 2, 3)

    def test_distinct_streams(self):
        seeds = {derive_seed(7, cell, server, stream)
                 for cell in range(4) for server in range(4)
                 for stream in range(2)}
        assert len(seeds) == 32


class TestScalarVectorEquality:
    """The vectorized cohort engine must reproduce the event-at-a-time
    oracle bitwise -- same responses, drops, and deadline violations."""

    @pytest.mark.parametrize("scenario", [SURGE, FAILSLOW], ids=["surge", "failslow"])
    def test_digest_matches_oracle(self, scenario):
        oracle = run_rack(scenario, mode="scalar")
        cohort = run_rack(scenario, mode="cohort")
        assert cohort.digest == oracle.digest
        assert cohort.requests == oracle.requests
        assert cohort.drops == oracle.drops
        assert cohort.violations == oracle.violations

    def test_event_accounting(self):
        result = run_rack(SURGE, mode="cohort")
        assert result.events == 3 * result.admitted + result.drops


class TestShardCountInvariance:
    """``shards`` picks worker processes, never the decomposition:
    digests must be identical for 1, 2, and 4 shards."""

    @pytest.mark.parametrize("scenario", [SURGE, FAILSLOW], ids=["surge", "failslow"])
    def test_rack_digest_invariant(self, scenario):
        digests = {
            shards: run_rack(scenario, mode="cohort", shards=shards).digest
            for shards in (1, 2, 4)
        }
        assert len(set(digests.values())) == 1

    def test_cluster_digest_invariant_surge(self):
        sim = _cluster_sim(arrivals=SurgeSchedule(
            base_rate_rps=600.0,
            surge_multiplier=3.0,
            surge_start_ms=800.0,
            surge_end_ms=1600.0,
        ), overload=OverloadPolicy(queue_cap=32))
        digests = {s: sim.run(shards=s).digest() for s in (1, 2, 4)}
        assert len(set(digests.values())) == 1

    def test_cluster_digest_invariant_failslow(self):
        sim = _cluster_sim(
            failslow=FailSlowPlan.single_slow_node(server=2, factor=5.0),
        )
        digests = {s: sim.run(shards=s).digest() for s in (1, 2, 4)}
        assert len(set(digests.values())) == 1

    def test_cluster_totals_match_across_shards(self):
        sim = _cluster_sim()
        serial = sim.run(shards=1)
        parallel = sim.run(shards=2)
        assert parallel.throughput_rps == serial.throughput_rps
        assert parallel.mean_response_ms == serial.mean_response_ms
        assert parallel.p99_ms == serial.p99_ms


def _cluster_sim(**kwargs):
    return ClusterSimulator.sharded(
        platform("desk"),
        _make_webmail,
        servers=8,
        cells=2,
        enclosure_size=4,
        seed=3,
        warmup_ms=300.0,
        measure_ms=1200.0,
        arrivals=kwargs.pop("arrivals", None) or SurgeSchedule(
            base_rate_rps=400.0,
            surge_multiplier=1.0,
            surge_start_ms=0.0,
            surge_end_ms=0.0,
        ),
        **kwargs,
    )


class TestShardedClusterValidation:
    def test_rejects_remote_memory(self):
        with pytest.raises(ValueError, match="remote_memory"):
            ShardedClusterSimulator(
                platform("desk"), _make_webmail, servers=8,
                enclosure_size=4, remote_memory=object(),
            )

    def test_rejects_noncallable_workload(self):
        with pytest.raises(TypeError, match="workload_factory"):
            ShardedClusterSimulator(
                platform("desk"), make_workload("webmail"), servers=8,
                enclosure_size=4,
            )

    def test_rejects_cells_across_enclosures(self):
        with pytest.raises(ValueError, match="cells"):
            ShardedClusterSimulator(
                platform("desk"), _make_webmail, servers=8,
                enclosure_size=4, cells=3,
            )


class TestHybridFastPath:
    def test_hybrid_within_tolerance_of_full_des(self):
        steady = RackScenario(
            servers_per_cell=8,
            cells=2,
            rate_rps=1200.0,
            service_ms=0.5,
            duration_ms=4000.0,
            window_ms=200.0,
            deadline_ms=8.0,
            seed=7,
        )
        full = run_rack(steady, mode="cohort")
        hybrid = run_rack(steady, mode="hybrid")
        assert hybrid.windows_analytic > 0
        assert hybrid.p50_ms == pytest.approx(full.p50_ms, rel=HYBRID_TOLERANCE)
        assert hybrid.p99_ms == pytest.approx(full.p99_ms, rel=HYBRID_TOLERANCE)
        assert 0.0 <= hybrid.calibration_error <= HYBRID_TOLERANCE

    def test_transients_never_go_analytic(self):
        """Surge and fail-slow windows must stay on the DES kernels."""
        for scenario in (SURGE, FAILSLOW):
            hybrid = run_rack(scenario, mode="hybrid")
            full = run_rack(scenario, mode="cohort")
            # Too short to calibrate: hybrid degenerates to full DES.
            assert hybrid.windows_analytic == 0
            assert hybrid.digest == full.digest

    def test_metrics_record_classifier_and_tolerance(self):
        from repro.obs.metrics import MetricsRegistry

        steady = RackScenario(
            servers_per_cell=8,
            cells=1,
            rate_rps=1200.0,
            service_ms=0.5,
            duration_ms=3000.0,
            window_ms=200.0,
            deadline_ms=8.0,
            seed=7,
        )
        metrics = MetricsRegistry()
        result = run_rack(steady, mode="hybrid", metrics=metrics)
        assert metrics.value("sharded.requests") == result.requests
        assert (
            metrics.value("sharded.windows.vector")
            + metrics.value("sharded.windows.analytic")
            + metrics.value("sharded.windows.scalar")
            == result.windows_vector
            + result.windows_analytic
            + result.windows_scalar
        )
        assert metrics.value("sharded.calibration.tolerance") == HYBRID_TOLERANCE
        assert metrics.value("sharded.calibration.error") == result.calibration_error
        assert metrics.histogram("sharded.response_ms").count == result.admitted


class TestRackTelemetryFold:
    def test_histogram_tracks_exact_responses(self):
        """The folded histogram must carry every admitted response and
        agree with the exact mean within log-bucket resolution."""
        result = run_rack(SURGE, mode="cohort")
        assert result.histogram.count == result.admitted
        assert result.p99_ms >= result.p50_ms > 0.0
        assert result.mean_ms == pytest.approx(
            result.histogram.mean_ms, rel=1e-12
        )
