"""Acceptance: parallel fan-out is bit-identical to the serial runner.

Runs figure5, availability, and overload serially and with ``jobs=4``
(shrunk via overrides to keep the suite fast) and compares the full
``ExperimentResult`` payload digests.  This is the contract that makes
``--jobs N`` safe to use for paper reproduction: parallelism may change
wall-clock, never numbers.
"""

from repro.perf.parallel import run_experiments

NAMES = ["figure5", "availability", "overload"]

#: Shrunk workloads -- full-size runs take minutes; determinism is a
#: property of the code path, not the problem size.
OVERRIDES = {
    "availability": dict(servers=3, clients_per_server=3, warmup=50, measure=300),
    "overload": dict(
        servers=2,
        warmup_ms=500.0,
        surge_start_ms=1500.0,
        surge_end_ms=2500.0,
        measure_ms=5000.0,
    ),
}


def test_parallel_matches_serial_digest():
    serial = run_experiments(NAMES, method="analytic", jobs=1, overrides=OVERRIDES)
    parallel = run_experiments(NAMES, method="analytic", jobs=4, overrides=OVERRIDES)
    assert [name for name, _ in parallel] == NAMES
    for (name, a), (_, b) in zip(serial, parallel):
        assert a.payload_digest() == b.payload_digest(), f"{name} diverged under --jobs 4"
