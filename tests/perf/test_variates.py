"""The fast samplers must be bit-identical to ``random.expovariate``."""

import random

import pytest

from repro.perf.variates import ExponentialBlock, exponential_sampler


class TestExponentialSampler:
    def test_stream_identical_to_expovariate(self):
        reference = random.Random(42)
        fast = random.Random(42)
        sample = exponential_sampler(fast)
        for lambd in (0.5, 1.0, 3.25, 0.001):
            for _ in range(200):
                assert sample(lambd) == reference.expovariate(lambd)

    def test_interleaved_consumers_unperturbed(self):
        # The sampler consumes exactly one uniform per draw, so other
        # consumers of the same generator see an unchanged stream.
        reference = random.Random(7)
        shared = random.Random(7)
        sample = exponential_sampler(shared)
        for _ in range(100):
            assert sample(2.0) == reference.expovariate(2.0)
            assert shared.random() == reference.random()
            assert shared.randrange(10) == reference.randrange(10)


class TestExponentialBlock:
    def test_matches_expovariate_draw_for_draw(self):
        reference = random.Random(9)
        block = ExponentialBlock(random.Random(9), block_size=16)
        rates = [0.5, 1.0, 2.0, 10.0] * 20
        for rate in rates:
            assert block.next_scaled(rate) == pytest.approx(
                reference.expovariate(rate), rel=1e-12
            )

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            ExponentialBlock(random.Random(1), block_size=0)

    def test_refill_crosses_block_boundary(self):
        block = ExponentialBlock(random.Random(3), block_size=4)
        draws = [block.next_scaled(1.0) for _ in range(10)]
        assert len(draws) == 10
        assert all(d > 0 for d in draws)
