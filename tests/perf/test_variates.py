"""The fast samplers must be bit-identical to ``random.expovariate``."""

import random

import numpy as np
import pytest

from repro.perf.variates import (
    ExponentialBlock,
    exponential_block,
    exponential_fill,
    exponential_sampler,
)


class TestExponentialSampler:
    def test_stream_identical_to_expovariate(self):
        reference = random.Random(42)
        fast = random.Random(42)
        sample = exponential_sampler(fast)
        for lambd in (0.5, 1.0, 3.25, 0.001):
            for _ in range(200):
                assert sample(lambd) == reference.expovariate(lambd)

    def test_interleaved_consumers_unperturbed(self):
        # The sampler consumes exactly one uniform per draw, so other
        # consumers of the same generator see an unchanged stream.
        reference = random.Random(7)
        shared = random.Random(7)
        sample = exponential_sampler(shared)
        for _ in range(100):
            assert sample(2.0) == reference.expovariate(2.0)
            assert shared.random() == reference.random()
            assert shared.randrange(10) == reference.randrange(10)


class TestExponentialBlock:
    def test_matches_expovariate_draw_for_draw(self):
        reference = random.Random(9)
        block = ExponentialBlock(random.Random(9), block_size=16)
        rates = [0.5, 1.0, 2.0, 10.0] * 20
        for rate in rates:
            assert block.next_scaled(rate) == pytest.approx(
                reference.expovariate(rate), rel=1e-12
            )

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            ExponentialBlock(random.Random(1), block_size=0)

    def test_refill_crosses_block_boundary(self):
        block = ExponentialBlock(random.Random(3), block_size=4)
        draws = [block.next_scaled(1.0) for _ in range(10)]
        assert len(draws) == 10
        assert all(d > 0 for d in draws)


class TestExponentialFill:
    def test_bit_identical_to_sequential_sampler(self):
        filled = exponential_fill(random.Random(21), 500, 2.5)
        sample = exponential_sampler(random.Random(21))
        assert filled == [sample(2.5) for _ in range(500)]

    def test_roundtrips_through_float64(self):
        filled = exponential_fill(random.Random(4), 100, 1.0)
        assert np.asarray(filled, dtype=np.float64).tolist() == filled

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            exponential_fill(random.Random(1), -1, 1.0)


class TestExponentialBlockFill:
    def test_consumes_same_uniform_stream_as_fill(self):
        # Same uniforms, same order: after generating, both generators
        # sit at the same stream position...
        rng_a, rng_b = random.Random(33), random.Random(33)
        block = exponential_block(rng_a, 400, 1.5)
        filled = exponential_fill(rng_b, 400, 1.5)
        assert rng_a.random() == rng_b.random()
        # ...and values agree to ulp-level (numpy log vs math.log).
        assert np.allclose(block, np.asarray(filled), rtol=1e-12, atol=0.0)

    def test_returns_float64_array(self):
        block = exponential_block(random.Random(5), 16, 1.0)
        assert isinstance(block, np.ndarray)
        assert block.dtype == np.float64
        assert (block > 0).all()

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            exponential_block(random.Random(1), -2, 1.0)
