"""Smoke tests of the benchmark harness and its regression gate."""

import copy

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def document():
    # Tiny workloads: this checks plumbing, not statistics.
    return bench.run_benchmarks(quick=True, e2e=False, jobs=1)


class TestHarness:
    def test_document_shape(self, document):
        assert document["schema"] == 1
        assert document["quick"] is True
        assert {
            "engine_ping",
            "engine_churn",
            "engine_batch",
            "alloc_request_state",
            "alloc_attempt",
            "cluster_surge",
            "trace_overhead",
            "mrc_sweep",
            "flash_replay",
        } <= set(document["results"])

    def test_headline_present_and_positive(self, document):
        headline = document["headline"]
        assert headline["metric"] == "engine_churn/events_per_sec"
        assert headline["events_per_sec"] > 0
        assert headline["speedup_vs_legacy"] > 0

    def test_engine_beats_legacy_on_timer_churn(self, document):
        # The acceptance criterion proper (>= 1.5x) is measured in full
        # mode; quick mode just guards against outright regressions.
        churn = document["results"]["engine_churn"]
        assert churn["speedup_vs_legacy"] > 1.0

    def test_slots_shrink_hot_records(self, document):
        for record in ("alloc_request_state", "alloc_attempt"):
            metrics = document["results"][record]
            assert metrics["slotted_bytes_per_obj"] < metrics["dict_bytes_per_obj"]

    def test_kernels_beat_scalar_oracles(self, document):
        # The >=5x acceptance criterion for mrc_sweep is measured in full
        # mode; quick mode guards that the kernels win at all.  The
        # section itself asserts counter equality before reporting.
        assert document["results"]["mrc_sweep"]["speedup_vs_scalar"] > 1.0
        assert document["results"]["flash_replay"]["speedup_vs_scalar"] > 1.0


class TestRegressionGate:
    def test_passes_against_self(self, document):
        assert bench.check_regression(document, document) == []

    def test_flags_large_slowdown(self, document):
        slowed = copy.deepcopy(document)
        slowed["headline"]["speedup_vs_legacy"] = (
            document["headline"]["speedup_vs_legacy"] * (1 - bench.REGRESSION_TOLERANCE) * 0.9
        )
        failures = bench.check_regression(slowed, document)
        assert failures and "regressed" in failures[0]

    def test_tolerates_small_noise(self, document):
        noisy = copy.deepcopy(document)
        noisy["headline"]["speedup_vs_legacy"] = (
            document["headline"]["speedup_vs_legacy"] * 0.9
        )
        assert bench.check_regression(noisy, document) == []

    def test_improvement_never_fails(self, document):
        faster = copy.deepcopy(document)
        faster["headline"]["speedup_vs_legacy"] = (
            document["headline"]["speedup_vs_legacy"] * 2.0
        )
        assert bench.check_regression(faster, document) == []

    @pytest.mark.parametrize("key", ("mrc_sweep", "flash_replay"))
    def test_flags_kernel_regression(self, document, key):
        slowed = copy.deepcopy(document)
        slowed["results"][key]["speedup_vs_scalar"] = (
            document["results"][key]["speedup_vs_scalar"]
            * (1 - bench.REGRESSION_TOLERANCE) * 0.9
        )
        failures = bench.check_regression(slowed, document)
        assert failures and key in failures[0]

    def test_old_baseline_without_kernel_entries_passes(self, document):
        older = copy.deepcopy(document)
        del older["results"]["mrc_sweep"]
        del older["results"]["flash_replay"]
        del older["results"]["trace_overhead"]
        assert bench.check_regression(document, older) == []

    def test_flags_excess_trace_overhead(self, document):
        slowed = copy.deepcopy(document)
        slowed["results"]["trace_overhead"]["overhead_ratio"] = (
            bench.TRACE_OVERHEAD_LIMIT * 1.2
        )
        failures = bench.check_regression(slowed, document)
        assert failures and "trace overhead" in failures[0]

    def test_trace_overhead_gate_is_absolute_not_relative(self, document):
        # The gate compares against TRACE_OVERHEAD_LIMIT, not the
        # baseline's measured ratio: an in-limit ratio passes even if
        # the baseline happened to record a lower one.
        current = copy.deepcopy(document)
        current["results"]["trace_overhead"]["overhead_ratio"] = (
            bench.TRACE_OVERHEAD_LIMIT - 0.01
        )
        assert bench.check_regression(current, document) == []
