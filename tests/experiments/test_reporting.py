"""Tests of the shared reporting helpers."""

import pytest

from repro.experiments.reporting import (
    ascii_stacked_bars,
    dollars,
    format_table,
    percent,
    watts,
)


class TestFormatters:
    def test_dollars_and_watts(self):
        assert dollars(1234.5) == "$1,234"
        assert watts(51.7) == "52 W"

    def test_percent_rounds(self):
        assert percent(0.954) == "95%"
        assert percent(2.0) == "200%"


class TestAsciiStackedBars:
    def test_bars_scale_to_largest_total(self):
        chart = ascii_stacked_bars(
            {"big": {"a": 100.0}, "small": {"a": 50.0}}, width=10
        )
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_legend_lists_segments_in_order(self):
        chart = ascii_stacked_bars({"x": {"cpu": 1.0, "mem": 2.0}})
        assert chart.splitlines()[-1] == "#=cpu  @=mem"

    def test_missing_segments_render_empty(self):
        chart = ascii_stacked_bars(
            {"x": {"a": 5.0, "b": 5.0}, "y": {"a": 10.0}}, width=10
        )
        y_line = chart.splitlines()[1]
        assert "@" not in y_line

    def test_totals_shown(self):
        chart = ascii_stacked_bars({"x": {"a": 1234.0}})
        assert "1,234" in chart

    def test_validation(self):
        assert ascii_stacked_bars({}) == "(empty)"
        with pytest.raises(ValueError):
            ascii_stacked_bars({"x": {"a": 0.0}})
        too_many = {f"s{i}": 1.0 for i in range(20)}
        with pytest.raises(ValueError):
            ascii_stacked_bars({"x": too_many})


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table(["A", "B"], []) == "A | B"

    def test_column_alignment(self):
        text = format_table(["Name", "Val"], [("aa", 1), ("b", 22)])
        lines = text.splitlines()
        # First column left-aligned, second right-aligned.
        assert lines[2].startswith("aa")
        assert lines[3].startswith("b ")
        assert lines[2].rstrip().endswith("1")
