"""Tests of the extension experiments (ablation, sensitivity, diurnal)."""

import pytest

from repro.experiments import ablation, diurnal, sensitivity


class TestSensitivityMemorySweep:
    def test_slowdowns_grow_as_local_memory_shrinks(self):
        table = sensitivity.local_fraction_slowdowns(trace_length=60_000)
        assert set(table) == {
            "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr",
        }
        for workload, by_fraction in table.items():
            ordered = [
                by_fraction[f] for f in sorted(by_fraction, reverse=True)
            ]
            assert all(a <= b + 1e-12 for a, b in zip(ordered, ordered[1:])), workload
            assert all(v >= 0 for v in ordered)

    def test_run_includes_memory_sweep_section(self):
        result = sensitivity.run(method="analytic")
        assert "local-memory-fraction sweep (LRU, PCIe x4)" in result.sections
        sweep = result.data["local_fraction"]
        assert set(sweep["websearch"]) == set(sensitivity.LOCAL_FRACTION_SWEEP)


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.run(method="analytic")

    def test_five_variants_evaluated(self, result):
        tco = result.data["tables"]["Perf/TCO-$"]
        assert set(tco.systems) == {
            "srvr1", "N2", "N2-no-embedded", "N2-no-cooling",
            "N2-no-memshare", "N2-no-flashdisk",
        }

    def test_full_n2_beats_every_ablated_variant(self, result):
        tco = result.data["tables"]["Perf/TCO-$"]
        full = tco.hmean("N2")
        for variant, delta in result.data["contributions"].items():
            if variant != "N2":
                assert tco.hmean(variant) <= full + 0.02, variant

    def test_embedded_platform_is_the_biggest_contributor(self, result):
        contributions = {
            k: v for k, v in result.data["contributions"].items() if k != "N2"
        }
        assert max(contributions, key=contributions.get) == "N2-no-embedded"

    def test_measured_memory_flag_propagates(self):
        designs = ablation.ablated_designs(measured_memory=True)
        for design in designs:
            assert design.measured_memory == (design.memory_scheme is not None)
        # Default stays off (the byte-identical assumed-2% path).
        assert all(not d.measured_memory for d in ablation.ablated_designs())

    def test_measured_memory_run_smoke(self):
        result = ablation.run(method="analytic", measured_memory=True)
        tco = result.data["tables"]["Perf/TCO-$"]
        assert tco.hmean("N2") > 0


class TestDiurnal:
    @pytest.fixture(scope="class")
    def result(self):
        return diurnal.run()

    def test_reports_all_three_systems(self, result):
        assert set(result.data) == {"srvr1", "desk", "emb1"}

    def test_energy_ordering_follows_power(self, result):
        assert (
            result.data["srvr1"]["daily_kwh"]
            > result.data["desk"]["daily_kwh"]
            > result.data["emb1"]["daily_kwh"]
        )

    def test_parking_saves_on_every_platform(self, result):
        for system, values in result.data.items():
            assert 0.0 < values["savings"] < 0.5, system
            assert values["managed_kwh"] < values["daily_kwh"]
