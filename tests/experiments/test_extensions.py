"""Tests of the extension experiments (ablation, scale-out, diurnal)."""

import pytest

from repro.experiments import ablation, diurnal


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.run(method="analytic")

    def test_five_variants_evaluated(self, result):
        tco = result.data["tables"]["Perf/TCO-$"]
        assert set(tco.systems) == {
            "srvr1", "N2", "N2-no-embedded", "N2-no-cooling",
            "N2-no-memshare", "N2-no-flashdisk",
        }

    def test_full_n2_beats_every_ablated_variant(self, result):
        tco = result.data["tables"]["Perf/TCO-$"]
        full = tco.hmean("N2")
        for variant, delta in result.data["contributions"].items():
            if variant != "N2":
                assert tco.hmean(variant) <= full + 0.02, variant

    def test_embedded_platform_is_the_biggest_contributor(self, result):
        contributions = {
            k: v for k, v in result.data["contributions"].items() if k != "N2"
        }
        assert max(contributions, key=contributions.get) == "N2-no-embedded"


class TestDiurnal:
    @pytest.fixture(scope="class")
    def result(self):
        return diurnal.run()

    def test_reports_all_three_systems(self, result):
        assert set(result.data) == {"srvr1", "desk", "emb1"}

    def test_energy_ordering_follows_power(self, result):
        assert (
            result.data["srvr1"]["daily_kwh"]
            > result.data["desk"]["daily_kwh"]
            > result.data["emb1"]["daily_kwh"]
        )

    def test_parking_saves_on_every_platform(self, result):
        for system, values in result.data.items():
            assert 0.0 < values["savings"] < 0.5, system
            assert values["managed_kwh"] < values["daily_kwh"]
