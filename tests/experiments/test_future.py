"""Tests of the future-work (N3) composition experiment."""

import pytest

from repro.experiments import future
from repro.experiments.future import _cbf_dma_slowdown, _shared_compressed_scheme
from repro.memsim.provisioning import DYNAMIC_PROVISIONING


class TestBuildingBlocks:
    def test_cbf_dma_slowdown_much_smaller_than_baseline(self):
        slowdown = _cbf_dma_slowdown(0.02)
        assert slowdown < 0.005
        assert slowdown > 0.0

    def test_shared_compressed_scheme_shrinks_remote_dram(self):
        scheme = _shared_compressed_scheme()
        assert scheme.local_fraction == DYNAMIC_PROVISIONING.local_fraction
        assert scheme.remote_fraction < DYNAMIC_PROVISIONING.remote_fraction / 1.5
        assert scheme.memory_cost_factor() < DYNAMIC_PROVISIONING.memory_cost_factor()


class TestFutureExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return future.run(method="analytic")

    def test_all_steps_reported(self, result):
        assert set(result.data) == {"N2", "N3-memfast", "N3-memlean", "N3-flash"}

    def test_memory_enhancements_improve_on_n2(self, result):
        assert result.data["N3-memfast"] > result.data["N2"]
        assert result.data["N3-memlean"] > result.data["N3-memfast"]

    def test_flash_replacement_loses_on_tco_at_2008_pricing(self, result):
        """The interesting negative result: a $448 flash array erases the
        TCO gains even though it improves performance and Perf/W."""
        assert result.data["N3-flash"] < result.data["N3-memlean"]
