"""Tests of the experiment modules (fast paths) and the runner."""

import pytest

from repro.experiments import figure1, figure3, figure4, table1, table2
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.experiments.runner import _EXPERIMENTS, run_experiment


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("Name")

    def test_percent_style(self):
        assert percent(1.67) == "167%"

    def test_experiment_result_render(self):
        result = ExperimentResult(
            experiment_id="X", title="T", paper_reference="Fig 0",
            sections={"s": "body"},
        )
        text = result.render()
        assert "X: T" in text and "body" in text


class TestTable1:
    def test_lists_all_benchmarks(self):
        result = table1.run()
        for name in ("websearch", "webmail", "ytube", "mapred-wc", "mapred-wr"):
            assert name in result.data
        assert "websearch" in result.sections["summary"]

    def test_qos_strings_match_paper(self):
        data = table1.run().data
        assert "<0.5 seconds" in data["websearch"]["qos"]
        assert "<0.8 seconds" in data["webmail"]["qos"]
        assert data["mapred-wc"]["qos"] == "n/a (batch)"


class TestFigure1:
    def test_totals_match_paper(self):
        data = figure1.run().data
        assert data["srvr1_total"] == pytest.approx(5758, abs=10)
        assert data["srvr2_total"] == pytest.approx(3249, abs=10)
        assert data["srvr1_pc"] == pytest.approx(2464, abs=5)
        assert data["srvr2_pc"] == pytest.approx(1561, abs=5)


class TestTable2:
    def test_all_systems_reported(self):
        data = table2.run().data
        assert set(data) == {"srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"}
        assert data["emb1"]["watt"] == 52
        assert data["emb1"]["inf_usd"] == pytest.approx(499, abs=1)


class TestFigure3:
    def test_cooling_claims(self):
        data = figure3.run().data
        assert data["dual-entry"]["cooling_efficiency"] == pytest.approx(2.0, abs=0.5)
        assert data["aggregated-microblade"]["cooling_efficiency"] == pytest.approx(
            4.0, abs=0.6
        )
        assert data["dual-entry"]["systems_per_rack"] == 320
        assert data["aggregated-microblade"]["systems_per_rack"] == 1250


class TestFigure4Fast:
    def test_fast_mode_produces_all_sections(self):
        result = figure4.run(fast=True)
        assert any("25.0% local" in s for s in result.sections)
        assert any("12.5% local" in s for s in result.sections)
        assert "provisioning efficiencies (c)" in result.sections
        prov = result.data["provisioning"]
        assert prov["dynamic"]["perf_per_tco"] > prov["static"]["perf_per_tco"] - 0.02


class TestRunner:
    def test_registry_covers_every_artifact(self):
        assert set(_EXPERIMENTS) == {
            "table1", "figure1", "table2", "figure2", "figure3",
            "figure4", "table3", "figure5", "sensitivity",
            "ablation", "scaleout", "diurnal", "validation", "future",
            "power", "contention", "latency", "heterogeneous",
            "availability", "overload", "trace_attribution", "failslow",
            "redundancy",
        }

    def test_run_experiment_by_name(self):
        result = run_experiment("table2")
        assert isinstance(result, ExperimentResult)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("figure9")
