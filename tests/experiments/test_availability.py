"""Tests of the availability-under-faults experiment (EXT-8)."""

import pytest

from repro.experiments import availability


@pytest.fixture(scope="module")
def result():
    # Shrunk cluster/window so the whole srvr1/N1/N2 sweep stays fast.
    return availability.run(
        servers=3, clients_per_server=5, warmup=100, measure=700
    )


class TestAvailabilityExperiment:
    def test_reports_every_design(self, result):
        for name in ("srvr1", "N1", "N2"):
            assert name in result.data
            assert result.data[name]["healthy_rps"] > 0
            assert result.data[name]["faulted_rps"] > 0

    def test_sections_render(self, result):
        assert any("Perf/TCO-$" in name for name in result.sections)
        assert any("degraded operation" in name for name in result.sections)
        assert "conclusion" in result.sections
        assert "N2" in result.render()

    def test_baseline_is_the_reference(self, result):
        assert result.data["srvr1"]["relative_weighted_perf_per_tco"] == (
            pytest.approx(1.0)
        )

    def test_repair_and_availability_are_priced(self, result):
        for name in ("srvr1", "N1", "N2"):
            row = result.data[name]
            assert row["repair_usd"] > 0
            assert row["adjusted_tco_usd"] == pytest.approx(
                row["tco_usd"] + row["repair_usd"]
            )
            assert 0.99 < row["analytic_availability"] < 1.0
        # N2's serving path crosses more parts than srvr1's.
        assert (
            result.data["N2"]["analytic_availability"]
            < result.data["srvr1"]["analytic_availability"]
        )

    def test_faults_actually_fired(self, result):
        for name in ("srvr1", "N1", "N2"):
            assert sum(result.data[name]["injected_failures"].values()) > 0
            assert result.data[name]["measured_availability"] < 1.0

    def test_n2_blade_correlation_is_visible_but_bounded(self, result):
        n2 = result.data["N2"]
        assert n2["blade_downtime_ms"] > 0
        assert n2["degraded_requests"] > 0
        assert n2["faulted_p95_ms"] > n2["healthy_p95_ms"]
        # Retries/hedging keep QoS casualties bounded, not eliminated.
        assert n2["qos_violation_rate"] < 0.25
        assert n2["throughput_retention"] > 0.75

    def test_documented_profile_and_policy(self, result):
        assert result.data["fault_profile"] == "stress-60s-window"
        assert result.data["retry_policy"]["timeout_ms"] == 500.0
