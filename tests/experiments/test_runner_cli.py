"""Tests of the experiments CLI."""


import pytest

from repro.experiments.runner import _EXPERIMENTS, main


class TestCli:
    def test_list_prints_registry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(_EXPERIMENTS)

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_runs_named_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "srvr1" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["figure99"])

    def test_output_flag_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert main(["figure1", "--output", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert "Cost models" in text
        assert "$5,756" in text or "5,756" in text

    def test_analytic_method_flag(self, capsys):
        assert main(["figure2", "--method", "analytic"]) == 0
        assert "Perf/TCO-$" in capsys.readouterr().out
