"""EXT-13 grid: parallel fan-out must be invisible in the results."""

from repro.experiments.redundancy import (
    RedundancyRunConfig,
    run_redundancy_config,
)
from repro.perf.parallel import pmap


def _grid():
    # One config per arm, shrunk to smoke size and untraced so the
    # whole grid runs in seconds.
    arms = [
        ("baseline", "unprotected"),
        ("healthy", "replica"),
        ("storm", "replica"),
        ("storm", "unprotected"),
        ("rolling", "replica"),
    ]
    return [
        RedundancyRunConfig(
            scenario=scenario,
            policy=policy,
            servers=3,
            clients_per_server=4,
            warmup=50,
            measure=300,
            traced=False,
        )
        for scenario, policy in arms
    ]


class TestParallelDeterminism:
    def test_jobs4_matches_serial_byte_for_byte(self):
        serial = [run_redundancy_config(config) for config in _grid()]
        fanned = pmap(run_redundancy_config, _grid(), jobs=4)
        assert [p["result"].stream_digest() for p in serial] == [
            p["result"].stream_digest() for p in fanned
        ]
        # The full result objects (recovery reports included) match
        # too, not just the request stream.
        assert [p["result"] for p in serial] == [
            p["result"] for p in fanned
        ]

    def test_healthy_protection_matches_baseline_stream(self):
        grid = _grid()
        baseline = run_redundancy_config(grid[0])
        healthy = run_redundancy_config(grid[1])
        assert (
            baseline["result"].stream_digest()
            == healthy["result"].stream_digest()
        )

    def test_storm_arm_rebuilds_without_loss(self):
        payload = run_redundancy_config(_grid()[2])
        report = payload["result"].recovery_report
        assert report.blade_failures >= 1
        assert report.pages_rebuilt > 0
        assert report.audit.conserved
        assert not report.data_loss
