"""Tests of the metastable-overload experiment (EXT-10)."""

import pytest

from repro.experiments import overload
from repro.experiments.runner import _EXPERIMENTS

DESIGNS = ("srvr1", "N1", "N2")
MODES = ("naive", "protected")

#: Small sweep used for the determinism and invariant checks; kept
#: short so two full srvr1/N1/N2 runs stay cheap.
_SMALL = dict(
    servers=2,
    seed=11,
    warmup_ms=1000.0,
    surge_start_ms=3000.0,
    surge_end_ms=5000.0,
    measure_ms=9000.0,
)


@pytest.fixture(scope="module")
def result():
    # Two servers instead of four keeps the event count manageable
    # while leaving the surge dynamics (and the metastable collapse)
    # intact.
    return overload.run(servers=2)


@pytest.fixture(scope="module")
def small_results():
    return overload.run(**_SMALL), overload.run(**_SMALL)


class TestOverloadExperiment:
    def test_reports_every_design_and_mode(self, result):
        for name in DESIGNS:
            assert name in result.data
            for mode in MODES:
                row = result.data[name][mode]
                assert row["offered_rps"] > 0
                assert row["pre_surge_goodput_rps"] > 0

    def test_naive_stack_collapses(self, result):
        # Acceptance: post-surge goodput at least 30% below pre-surge.
        for name in DESIGNS:
            row = result.data[name]["naive"]
            assert row["post_surge_goodput_rps"] <= (
                0.7 * row["pre_surge_goodput_rps"]
            )

    def test_protected_stack_recovers(self, result):
        # Acceptance: within 5% of the pre-surge baseline, inside the
        # measurement window.
        for name in DESIGNS:
            row = result.data[name]["protected"]
            assert row["recovered_fraction"] >= 0.95
            assert row["recovery_ms"] is not None

    def test_protection_layers_fire(self, result):
        for name in DESIGNS:
            protected = result.data[name]["protected"]
            assert protected["total_shed"] > 0
            assert protected["retries_denied"] >= 0
            naive = result.data[name]["naive"]
            assert naive["total_shed"] == 0
            assert naive["rejected_queue_full"] == 0

    def test_goodput_bounded_by_throughput_and_offered(
        self, result, small_results
    ):
        # Structural invariant across the design/mode/parameter sweep:
        # goodput <= throughput <= offered.
        sweeps = [result.data, small_results[0].data]
        for data in sweeps:
            for name in DESIGNS:
                for mode in MODES:
                    row = data[name][mode]
                    assert row["goodput_rps"] <= row["throughput_rps"] + 1e-9
                    assert row["throughput_rps"] <= row["offered_rps"] + 1e-9

    def test_same_seed_is_deterministic(self, small_results):
        first, second = small_results
        assert first.data == second.data

    def test_cost_coda_is_anchored(self, result):
        assert result.data["srvr1"]["protected"][
            "relative_weighted_perf_per_tco"
        ] == pytest.approx(1.0)
        for name in DESIGNS:
            naive = result.data[name]["naive"]
            protected = result.data[name]["protected"]
            assert (
                naive["weighted_perf_per_tco"]
                < protected["weighted_perf_per_tco"]
            )

    def test_sections_render(self, result):
        assert any("surge" in name for name in result.sections)
        assert "protection activity" in result.sections
        assert "conclusion" in result.sections
        rendered = result.render()
        assert "recovered" in rendered
        assert "N2" in rendered

    def test_registered_with_runner(self):
        assert _EXPERIMENTS["overload"] is overload.run
