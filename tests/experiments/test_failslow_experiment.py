"""EXT-12 grid: parallel fan-out must be invisible in the results."""

from repro.experiments.failslow import (
    DETECTION,
    FailSlowRunConfig,
    run_failslow_config,
)
from repro.perf.parallel import pmap


def _grid():
    # One config per scenario, shrunk to smoke size and untraced so the
    # whole grid runs in seconds.
    return [
        FailSlowRunConfig(
            design="srvr1",
            scenario=scenario,
            servers=3,
            clients_per_server=3,
            warmup=50,
            measure=250,
            traced=False,
        )
        for scenario in ("healthy", "undetected", "detected")
    ]


class TestParallelDeterminism:
    def test_jobs4_matches_serial_byte_for_byte(self):
        serial = [run_failslow_config(config) for config in _grid()]
        fanned = pmap(run_failslow_config, _grid(), jobs=4)
        assert [p["result"].stream_digest() for p in serial] == [
            p["result"].stream_digest() for p in fanned
        ]
        # The full result objects (reports included) match too, not
        # just the request stream.
        assert [p["result"] for p in serial] == [
            p["result"] for p in fanned
        ]

    def test_detected_scenario_ejects_the_slow_node(self):
        payload = run_failslow_config(_grid()[2])
        report = payload["result"].failslow_report
        assert report.drifting_servers == [0]
        assert report.ejections >= 1
        assert DETECTION.adaptive_timeout is not None
        assert report.last_adaptive_timeout_ms is not None
