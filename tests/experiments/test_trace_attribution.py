"""Tests of the critical-path attribution experiment (EXT-11)."""

import pytest

from repro.experiments import trace_attribution
from repro.experiments.trace_attribution import (
    PERCENTILES,
    TraceRunConfig,
    run_traced_design,
    summarize,
)

_SHRUNK = dict(servers=3, clients_per_server=5, warmup=100, measure=600)


@pytest.fixture(scope="module")
def result():
    # Shrunk cluster/window so the traced srvr1/N1/N2 sweep stays fast;
    # jobs=2 doubles as a worker-process pickling check.
    return trace_attribution.run(jobs=2, **_SHRUNK)


class TestTraceAttributionExperiment:
    def test_reports_every_design(self, result):
        for name in ("srvr1", "N1", "N2"):
            summary = result.data[name]
            assert summary["completed_traces"] > 0
            assert summary["requests_seen"] >= summary["traces"]
            assert summary["per_server_rps"] > 0

    def test_shares_sum_to_one_at_every_percentile(self, result):
        for name in ("srvr1", "N1", "N2"):
            attribution = result.data[name]["attribution"]
            for percentile in PERCENTILES:
                row = attribution[f"p{percentile * 100:g}"]
                assert row["share_sum"] == pytest.approx(1.0)
                assert row["mean_tail_ms"] == pytest.approx(
                    sum(row["components_ms"].values())
                )
                assert row["latency_ms"] > 0

    def test_tail_latency_is_monotone_in_percentile(self, result):
        for name in ("srvr1", "N1", "N2"):
            attribution = result.data[name]["attribution"]
            latencies = [
                attribution[f"p{p * 100:g}"]["latency_ms"]
                for p in sorted(PERCENTILES)
            ]
            assert latencies == sorted(latencies)

    def test_sections_render(self, result):
        for name in ("srvr1", "N1", "N2"):
            assert f"critical-path attribution -- {name}" in result.sections
        assert "p99 critical path by design" in result.sections
        assert "conclusion" in result.sections
        rendered = result.render()
        assert "p99" in rendered and "retry" in rendered

    def test_combined_metrics_cover_the_fleet(self, result):
        combined = result.data["combined"]
        assert combined["served"] > 0
        assert combined["response_p99_ms"] > 0

    def test_documented_parameters(self, result):
        assert result.data["workload"] == "websearch"
        assert result.data["fault_profile"] == "stress-60s-window"
        assert result.data["sample_rate"] == 1.0
        assert result.experiment_id == "EXT-11"

    def test_serial_rerun_reproduces_the_parallel_digest(self, result):
        payload = run_traced_design(TraceRunConfig(design="srvr1", **_SHRUNK))
        summary = summarize(payload)
        assert summary["trace_digest"] == result.data["srvr1"]["trace_digest"]


class TestTraceRunConfig:
    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            run_traced_design(TraceRunConfig(design="srvr9"))

    def test_healthy_mode_skips_fault_machinery(self):
        payload = run_traced_design(
            TraceRunConfig(
                design="srvr1", faults=False, warmup=50, measure=200,
                servers=2, clients_per_server=4,
            )
        )
        assert payload["result"].fault_report is None
        assert payload["tracer"].completed_traces()
