"""Content checks on the regenerated artifacts (fast analytic paths)."""

import pytest

from repro.experiments import figure2, figure5
from repro.experiments.table3 import device_table


class TestFigure2Content:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(method="analytic")

    def test_all_sections_present(self, result):
        names = set(result.sections)
        assert {"Inf-$ breakdown (a)", "Inf-$ chart (a)",
                "P&C-$ breakdown (b)", "P&C-$ chart (b)",
                "rack power (section 3.2)"} <= names
        for metric in figure2.FIGURE2C_METRICS:
            assert f"{metric} (c)" in names

    def test_breakdown_totals_match_table2(self, result):
        table = result.sections["Inf-$ breakdown (a)"]
        total_line = [
            line for line in table.splitlines() if line.startswith("total")
        ][0]
        assert "3,294" in total_line and "379" in total_line

    def test_charts_have_legends(self, result):
        chart = result.sections["Inf-$ chart (a)"]
        assert "#=cpu" in chart
        assert "srvr1" in chart and "emb2" in chart

    def test_rack_power_section_mentions_13_6_kw(self, result):
        assert "13.6 kW" in result.sections["rack power (section 3.2)"]

    def test_matrix_has_hmean_row(self, result):
        assert "HMean" in result.sections["Perf/TCO-$ (c)"]


class TestTable3Content:
    def test_device_table_lists_all_four_devices(self):
        table = device_table()
        for device in ("flash-1gb", "laptop-disk", "laptop-2-disk", "desktop-disk"):
            assert device in table
        assert "20us rd / 200us wr" in table
        assert "$14" in table and "$120" in table


class TestFigure5Content:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(method="analytic", include_alternate_baselines=True)

    def test_alternate_baseline_sections(self, result):
        assert "Perf/TCO-$ (vs srvr2)" in result.sections
        assert "Perf/TCO-$ (vs desk)" in result.sections

    def test_equal_performance_section(self, result):
        section = result.sections["equal-performance fleets (section 3.6)"]
        assert "N1" in section and "N2" in section
        equal = result.data["equal_performance"]
        # Paper: "60% reduction in power, 55% reduction in overall costs".
        assert equal["N2"]["power_reduction"] > 0.5
        assert equal["N2"]["cost_reduction"] > 0.4
        assert equal["N2"]["racks_reduction"] > 0.3

    def test_n2_needs_more_servers_but_less_of_everything_else(self, result):
        equal = result.data["equal_performance"]
        assert equal["N2"]["servers_per_srvr1"] > 1.0
