"""Tests of the latency-vs-load open-loop experiment."""

import pytest

from repro.experiments import latency_load
from repro.simulator.server_sim import SimConfig


@pytest.fixture(scope="module")
def result():
    return latency_load.run(
        config=SimConfig(warmup_requests=120, measure_requests=900, seed=21)
    )


class TestLatencyLoad:
    def test_all_systems_swept(self, result):
        assert set(result.data) == {"srvr1", "desk", "emb1"}

    def test_latency_monotone_in_load(self, result):
        for system, sweep in result.data.items():
            p95s = [
                vals["p95_ms"]
                for load, vals in sorted(sweep.items())
                if "p95_ms" in vals
            ]
            assert all(a <= b * 1.15 for a, b in zip(p95s, p95s[1:])), system

    def test_qos_holds_at_light_load(self, result):
        for system, sweep in result.data.items():
            assert sweep[0.3].get("qos_met") == 1.0, system

    def test_slow_platforms_violate_earlier(self, result):
        """emb1's p95 crosses the budget at a lower relative load than
        srvr1 -- the mechanism behind its lower QoS-relative performance."""
        def first_violation(sweep):
            for load, vals in sorted(sweep.items()):
                if vals.get("qos_met") == 0.0 or "overloaded" in vals:
                    return load
            return 1.0

        assert first_violation(result.data["emb1"]) <= first_violation(
            result.data["srvr1"]
        )
