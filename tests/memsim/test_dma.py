"""Tests of the DMA-direct enhancement model."""

import pytest

from repro.memsim.dma import DmaDirectModel
from repro.memsim.twolevel import PCIE_X4_PAGE_LATENCY_US, slowdown_fraction


class TestDmaDirectModel:
    def test_no_io_misses_changes_nothing(self):
        model = DmaDirectModel(io_buffer_fraction=0.0)
        assert model.effective_miss_cost_factor() == pytest.approx(1.0)
        assert model.transfer_traffic_factor() == pytest.approx(1.0)

    def test_all_io_misses_leave_only_residual(self):
        model = DmaDirectModel(io_buffer_fraction=1.0, residual_cost_fraction=0.1)
        assert model.effective_miss_cost_factor() == pytest.approx(0.1)

    def test_slowdown_scales_by_cost_factor(self):
        model = DmaDirectModel(io_buffer_fraction=0.3)
        base = slowdown_fraction(0.2, 55.0, PCIE_X4_PAGE_LATENCY_US)
        improved = model.slowdown(0.2, 55.0, PCIE_X4_PAGE_LATENCY_US)
        assert improved == pytest.approx(base * model.effective_miss_cost_factor())
        assert improved < base

    def test_default_saves_about_a_quarter(self):
        """30% I/O misses at 10% residual cost: ~27% slowdown reduction."""
        factor = DmaDirectModel().effective_miss_cost_factor()
        assert factor == pytest.approx(0.73, abs=0.01)

    def test_traffic_reduction(self):
        model = DmaDirectModel(io_buffer_fraction=0.3)
        assert model.transfer_traffic_factor() == pytest.approx(0.9)
        assert model.transfer_traffic_factor() < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DmaDirectModel(io_buffer_fraction=1.5)
        with pytest.raises(ValueError):
            DmaDirectModel(residual_cost_fraction=-0.1)
