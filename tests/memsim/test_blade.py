"""Tests of the memory-blade controller: allocation and isolation."""

import pytest

from repro.memsim.blade import (
    IsolationError,
    MemoryBlade,
    PAGE_SIZE_BYTES,
    PCIE_PER_SERVER_COST_USD,
    PCIE_PER_SERVER_POWER_W,
)

_PAGE = bytes(PAGE_SIZE_BYTES)


@pytest.fixture
def blade():
    return MemoryBlade(capacity_gb=1.0)


class TestAllocation:
    def test_capacity_in_pages(self, blade):
        assert blade.capacity_pages == (1 << 30) // PAGE_SIZE_BYTES

    def test_allocate_and_track(self, blade):
        blade.allocate("server-a", 1000)
        blade.allocate("server-b", 2000)
        assert blade.allocated_pages == 3000
        assert blade.free_pages == blade.capacity_pages - 3000

    def test_overcommit_rejected(self, blade):
        with pytest.raises(MemoryError):
            blade.allocate("greedy", blade.capacity_pages + 1)

    def test_double_allocation_rejected(self, blade):
        blade.allocate("server-a", 10)
        with pytest.raises(ValueError):
            blade.allocate("server-a", 10)

    def test_release_frees_capacity(self, blade):
        blade.allocate("server-a", 500)
        blade.release("server-a")
        assert blade.free_pages == blade.capacity_pages
        assert blade.allocation_of("server-a") is None

    def test_nonpositive_allocation_rejected(self, blade):
        with pytest.raises(ValueError):
            blade.allocate("server-a", 0)


class TestIsolation:
    def test_unallocated_server_cannot_touch_pages(self, blade):
        with pytest.raises(IsolationError):
            blade.read_page("stranger", 0)

    def test_out_of_range_page_rejected(self, blade):
        blade.allocate("server-a", 10)
        with pytest.raises(IsolationError):
            blade.write_page("server-a", 10, _PAGE)
        with pytest.raises(IsolationError):
            blade.read_page("server-a", -1)

    def test_servers_cannot_see_each_others_data(self, blade):
        blade.allocate("server-a", 10)
        blade.allocate("server-b", 10)
        blade.write_page("server-a", 3, b"\x42" * PAGE_SIZE_BYTES)
        # Same page number, different server: fresh zero page.
        assert blade.read_page("server-b", 3) == _PAGE


class TestTransfers:
    def test_exclusive_swap_semantics(self, blade):
        """A page read back from the blade leaves the blade (exclusive
        caching: it now lives only in the server's local memory)."""
        blade.allocate("server-a", 10)
        payload = b"\x07" * PAGE_SIZE_BYTES
        blade.write_page("server-a", 5, payload)
        assert blade.read_page("server-a", 5) == payload
        # Second read: the page is gone; fresh zero-filled page.
        assert blade.read_page("server-a", 5) == _PAGE

    def test_transfer_counters(self, blade):
        blade.allocate("server-a", 10)
        blade.write_page("server-a", 1, _PAGE)
        blade.read_page("server-a", 1)
        assert blade.transfers_to_blade == 1
        assert blade.transfers_from_blade == 1

    def test_wrong_page_size_rejected(self, blade):
        blade.allocate("server-a", 10)
        with pytest.raises(ValueError):
            blade.write_page("server-a", 1, b"short")


class TestPaperConstants:
    def test_pcie_overheads_match_paper(self):
        assert PCIE_PER_SERVER_COST_USD == 10.0
        assert PCIE_PER_SERVER_POWER_W == 1.45
