"""Tests of content-based page sharing and compression models."""

import pytest

from repro.memsim.sharing import (
    CompressionModel,
    PageSharingModel,
    effective_capacity_factor,
)


class TestPageSharingModel:
    def test_dedup_ratio_shrinks_with_pool_width(self):
        narrow = PageSharingModel(shareable_fraction=0.3, servers=2)
        wide = PageSharingModel(shareable_fraction=0.3, servers=16)
        assert wide.dedup_ratio() < narrow.dedup_ratio()

    def test_no_shareable_content_is_identity(self):
        model = PageSharingModel(shareable_fraction=0.0, servers=8)
        assert model.capacity_multiplier() == pytest.approx(1.0)

    def test_fully_shareable_collapses_to_pool(self):
        model = PageSharingModel(shareable_fraction=1.0, servers=8)
        assert model.capacity_multiplier() == pytest.approx(8.0)

    def test_default_gives_modest_gain(self):
        gain = PageSharingModel().capacity_multiplier()
        assert 1.2 < gain < 1.6

    def test_validation(self):
        with pytest.raises(ValueError):
            PageSharingModel(shareable_fraction=1.5)
        with pytest.raises(ValueError):
            PageSharingModel(servers=0)


class TestCompressionModel:
    def test_capacity_multiplier_formula(self):
        model = CompressionModel(compression_ratio=2.0, compressible_fraction=1.0)
        assert model.capacity_multiplier() == pytest.approx(2.0)

    def test_incompressible_data_limits_gain(self):
        model = CompressionModel(compression_ratio=4.0, compressible_fraction=0.0)
        assert model.capacity_multiplier() == pytest.approx(1.0)

    def test_default_mxt_class_gain(self):
        """MXT-class: ~1.5x capacity at mixed compressibility."""
        assert CompressionModel().capacity_multiplier() == pytest.approx(1.54, abs=0.05)

    def test_fetch_latency_adds_expected_decompression(self):
        model = CompressionModel(
            compressible_fraction=0.5, decompression_latency_us=2.0
        )
        assert model.fetch_latency_us(4.0) == pytest.approx(5.0)

    def test_latency_penalty_small_vs_pcie_transfer(self):
        """The decompression cost hides behind the 4 us PCIe transfer."""
        model = CompressionModel()
        assert model.fetch_latency_us(4.0) < 4.0 * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionModel(compression_ratio=0.5)
        with pytest.raises(ValueError):
            CompressionModel(compressible_fraction=-0.1)
        with pytest.raises(ValueError):
            CompressionModel().fetch_latency_us(-1.0)


class TestEffectiveCapacity:
    def test_composition_multiplies(self):
        sharing = PageSharingModel(shareable_fraction=0.3, servers=8)
        compression = CompressionModel()
        combined = effective_capacity_factor(sharing, compression)
        assert combined == pytest.approx(
            sharing.capacity_multiplier() * compression.capacity_multiplier()
        )
        assert combined > 2.0  # both together roughly double blade capacity

    def test_nothing_enabled_is_identity(self):
        assert effective_capacity_factor() == 1.0

    def test_single_optimization(self):
        compression = CompressionModel()
        assert effective_capacity_factor(None, compression) == pytest.approx(
            compression.capacity_multiplier()
        )
