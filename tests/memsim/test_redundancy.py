"""Replica/parity blade groups: placement, recovery, page conservation."""

import random

import pytest

from repro.memsim.blade import IsolationError, PAGE_SIZE_BYTES
from repro.memsim.redundancy import (
    BladeGroup,
    RedundancyPolicy,
    ZERO_PAGE,
    auto_blade_group,
)


def _page(rng):
    return bytes(rng.getrandbits(8) for _ in range(16)) * (
        PAGE_SIZE_BYTES // 16
    )


class TestPolicy:
    def test_replica_shape(self):
        policy = RedundancyPolicy.replicated(2)
        assert policy.fault_tolerance == 1
        assert policy.capacity_overhead == 2.0
        assert policy.min_blades == 2
        assert policy.degraded_read_amplification == 1.0
        assert policy.rebuild_transfers_per_page == 2.0

    def test_parity_shape(self):
        policy = RedundancyPolicy.parity(4)
        assert policy.fault_tolerance == 1
        assert policy.capacity_overhead == pytest.approx(1.25)
        assert policy.min_blades == 5
        assert policy.degraded_read_amplification == 4.0
        assert policy.rebuild_transfers_per_page == 5.0

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            RedundancyPolicy.replicated(1)
        with pytest.raises(ValueError):
            RedundancyPolicy.parity(0)
        with pytest.raises(ValueError):
            RedundancyPolicy(mode="raid6", copies=2, data_shards=4)


class TestIsolation:
    def test_unattached_server_rejected(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a"], pages_per_server=8
        )
        with pytest.raises(IsolationError):
            group.read_page("intruder", 0)
        with pytest.raises(IsolationError):
            group.write_page("intruder", 0, ZERO_PAGE)

    def test_out_of_range_page_rejected_on_every_replica(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a", "b"], pages_per_server=8
        )
        with pytest.raises(IsolationError):
            group.write_page("a", 8, ZERO_PAGE)
        with pytest.raises(IsolationError):
            group.read_page("b", 100)

    def test_servers_cannot_read_each_others_pages(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a", "b"], pages_per_server=4
        )
        rng = random.Random(7)
        secret = _page(rng)
        group.write_page("a", 0, secret)
        # b's page 0 lives in b's allocation; it never sees a's bytes.
        assert group.read_page("b", 0) == ZERO_PAGE


class TestReplicaRecovery:
    def test_failover_read_returns_exact_bytes(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a"], pages_per_server=4
        )
        rng = random.Random(1)
        data = _page(rng)
        group.write_page("a", 2, data)
        group.fail_blade(group._replica_set(0)[0])
        assert group.read_page("a", 2) == data
        assert group.failover_reads == 1
        assert group.lost_page_reads == 0

    def test_rebuild_restores_full_redundancy(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a", "b"], pages_per_server=8
        )
        group.populate()
        group.fail_blade(0)
        group.repair_blade(0)
        assert group.pages_needing_rebuild > 0
        while group.rebuild_step(64):
            pass
        assert group.pages_needing_rebuild == 0
        assert group.degraded_pages() == 0
        audit = group.audit()
        assert audit.conserved
        assert audit.intact == audit.written

    def test_double_fault_loses_pages_but_conserves_accounting(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a"], pages_per_server=6
        )
        group.populate()
        group.fail_blade(0)
        group.fail_blade(1)
        audit = group.audit()
        assert audit.conserved
        assert audit.lost > 0
        assert audit.intact + audit.degraded + audit.lost == audit.written

    def test_lost_page_reads_as_zeros_and_counts(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 2, ["a"], pages_per_server=2
        )
        rng = random.Random(3)
        group.write_page("a", 0, _page(rng))
        group.fail_blade(0)
        group.fail_blade(1)
        assert group.read_page("a", 0) == ZERO_PAGE
        assert group.lost_page_reads == 1


class TestParityRecovery:
    def test_reconstruction_is_byte_exact(self):
        group = auto_blade_group(
            RedundancyPolicy.parity(4), 5, ["a"], pages_per_server=8
        )
        rng = random.Random(11)
        pages = {p: _page(rng) for p in range(8)}
        for p, data in pages.items():
            group.write_page("a", p, data)
        group.fail_blade(0)
        for p, data in pages.items():
            assert group.read_page("a", p) == data
        assert group.reconstructed_reads > 0
        assert group.lost_page_reads == 0

    def test_degraded_write_keeps_page_reconstructable(self):
        group = auto_blade_group(
            RedundancyPolicy.parity(4), 5, ["a"], pages_per_server=8
        )
        rng = random.Random(13)
        old, new = _page(rng), _page(rng)
        group.write_page("a", 0, old)
        # Take down page 0's home blade, then overwrite: parity must
        # absorb old ^ new so the new value is still reconstructable.
        group.fail_blade(group._data_blade(0, 0))
        group.write_page("a", 0, new)
        assert group.degraded_writes == 1
        assert group.read_page("a", 0) == new

    def test_rebuild_after_repair_clears_worklist(self):
        group = auto_blade_group(
            RedundancyPolicy.parity(4), 5, ["a", "b"], pages_per_server=8
        )
        group.populate()
        group.fail_blade(2)
        group.repair_blade(2)
        while group.rebuild_step(32):
            pass
        assert group.pages_needing_rebuild == 0
        assert group.audit().conserved
        assert group.degraded_pages() == 0


class TestConservationProperty:
    """rebuilt + surviving + lost == allocated under random histories."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "policy,blades",
        [
            (RedundancyPolicy.replicated(2), 3),
            (RedundancyPolicy.replicated(3), 4),
            (RedundancyPolicy.parity(4), 5),
        ],
    )
    def test_audit_conserved_under_random_fault_history(
        self, policy, blades, seed
    ):
        rng = random.Random(seed)
        pages = 12
        group = auto_blade_group(
            policy, blades, ["a", "b"], pages_per_server=pages
        )
        group.populate()
        for _ in range(120):
            op = rng.random()
            server = rng.choice(["a", "b"])
            if op < 0.35:
                group.write_page(server, rng.randrange(pages), _page(rng))
            elif op < 0.60:
                group.read_page(server, rng.randrange(pages))
            elif op < 0.75:
                down = [b for b, live in enumerate(group.live) if not live]
                up = [b for b, live in enumerate(group.live) if live]
                # Never exceed the policy's tolerance by more than one
                # extra fault (loss is allowed; bookkeeping must hold).
                if up and len(down) <= policy.fault_tolerance:
                    group.fail_blade(rng.choice(up))
            elif op < 0.90:
                down = [b for b, live in enumerate(group.live) if not live]
                if down:
                    group.repair_blade(rng.choice(down))
            else:
                group.rebuild_step(rng.randrange(1, 16))
            audit = group.audit()
            assert audit.conserved, f"audit broke: {audit}"
        # Recover everything recoverable and re-audit.
        for blade, live in enumerate(group.live):
            if not live:
                group.repair_blade(blade)
        while group.rebuild_step(64):
            pass
        final = group.audit()
        assert final.conserved
        assert final.duplicated == 0
        if final.lost == 0:
            # With nothing permanently lost, rebuild restores full
            # redundancy.  A lost page may strand its stripe siblings
            # degraded (their parity is unrecoverable) -- that history
            # is still conserved, just not repairable.
            assert final.degraded == 0

    def test_single_fault_within_tolerance_never_loses_pages(self):
        for policy, blades in (
            (RedundancyPolicy.replicated(2), 3),
            (RedundancyPolicy.parity(4), 5),
        ):
            group = auto_blade_group(
                policy, blades, ["a", "b", "c"], pages_per_server=16
            )
            group.populate()
            group.fail_blade(1)
            audit = group.audit()
            assert audit.lost == 0
            assert audit.conserved
            group.repair_blade(1)
            while group.rebuild_step(64):
                pass
            assert group.audit().intact == group.audit().written


class TestGroupConstruction:
    def test_too_few_blades_rejected(self):
        with pytest.raises(ValueError):
            BladeGroup(RedundancyPolicy.parity(4), 3)
        with pytest.raises(ValueError):
            BladeGroup(RedundancyPolicy.replicated(3), 2)

    def test_populate_counts_and_is_intact(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a", "b"], pages_per_server=5
        )
        assert group.populate() == 10
        audit = group.audit()
        assert audit.written == 10
        assert audit.intact == 10

    def test_attach_twice_rejected(self):
        group = auto_blade_group(
            RedundancyPolicy.replicated(2), 3, ["a"], pages_per_server=4
        )
        with pytest.raises(ValueError):
            group.attach("a", 4)
