"""Tests of the ensemble-provisioning study."""

import random

import pytest

from repro.memsim.ensemble import MemoryDemandModel, ProvisioningStudy


@pytest.fixture(scope="module")
def study():
    return ProvisioningStudy(MemoryDemandModel(), servers=32, seed=7)


class TestMemoryDemandModel:
    def test_paths_stay_in_bounds(self):
        model = MemoryDemandModel()
        rng = random.Random(1)
        path = model.sample_path(500, rng)
        assert len(path) == 500
        assert all(model.floor_gb <= v <= model.peak_gb for v in path)

    def test_mean_reversion(self):
        model = MemoryDemandModel(mean_gb=2.0, stddev_gb=0.5, peak_gb=4.0)
        rng = random.Random(2)
        path = model.sample_path(5000, rng)
        assert sum(path) / len(path) == pytest.approx(2.0, abs=0.2)

    def test_persistence_makes_paths_smooth(self):
        rng = random.Random(3)
        smooth = MemoryDemandModel(persistence=0.98).sample_path(1000, rng)
        rng = random.Random(3)
        jumpy = MemoryDemandModel(persistence=0.0).sample_path(1000, rng)
        def mean_step(path):
            return sum(abs(a - b) for a, b in zip(path, path[1:])) / len(path)
        assert mean_step(smooth) < mean_step(jumpy)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryDemandModel(mean_gb=5.0, peak_gb=4.0)
        with pytest.raises(ValueError):
            MemoryDemandModel(stddev_gb=0.0)
        with pytest.raises(ValueError):
            MemoryDemandModel(persistence=1.0)
        with pytest.raises(ValueError):
            MemoryDemandModel().sample_path(0, random.Random(1))


class TestProvisioningStudy:
    def test_ensemble_needs_less_than_per_server_peak(self, study):
        """The paper's motivating claim: ensemble-level sizing saves DRAM."""
        assert study.ensemble_provisioned_gb() < study.per_server_provisioned_gb()
        assert study.savings() > 0.10

    def test_savings_support_the_dynamic_scheme(self, study):
        """Section 3.4 assumes total memory at 85% of baseline; the
        stochastic model shows that is conservative (>=15% savings)."""
        assert study.savings(overflow_tolerance=0.01) >= 0.15

    def test_tighter_tolerance_needs_more_memory(self, study):
        loose = study.ensemble_provisioned_gb(overflow_tolerance=0.1)
        tight = study.ensemble_provisioned_gb(overflow_tolerance=0.001)
        assert tight >= loose

    def test_overflow_rate_matches_tolerance(self, study):
        capacity = study.ensemble_provisioned_gb(overflow_tolerance=0.05)
        assert study.overflow_rate(capacity) <= 0.05 + 1e-9

    def test_more_servers_smooth_the_aggregate(self):
        """Statistical multiplexing: relative savings grow with pool size."""
        small = ProvisioningStudy(MemoryDemandModel(), servers=4, seed=11)
        large = ProvisioningStudy(MemoryDemandModel(), servers=64, seed=11)
        assert large.savings() > small.savings() - 0.02

    def test_deterministic_by_seed(self):
        a = ProvisioningStudy(MemoryDemandModel(), servers=8, seed=5).savings()
        b = ProvisioningStudy(MemoryDemandModel(), servers=8, seed=5).savings()
        assert a == b

    def test_validation(self, study):
        with pytest.raises(ValueError):
            ProvisioningStudy(MemoryDemandModel(), servers=0)
        with pytest.raises(ValueError):
            study.ensemble_provisioned_gb(overflow_tolerance=0.0)
        with pytest.raises(ValueError):
            study.overflow_rate(-1.0)


class TestRedundantProvisioning:
    def test_overhead_one_is_the_plain_ensemble(self, study):
        assert study.redundant_ensemble_provisioned_gb(1.0) == (
            study.ensemble_provisioned_gb()
        )
        assert study.redundant_savings(1.0) == study.savings()

    def test_overhead_multiplies_only_the_blade_slice(self, study):
        total = study.ensemble_provisioned_gb()
        local = study.servers * study.local_gb_per_server
        blade = total - local
        expected = local + blade * 2.0
        assert study.redundant_ensemble_provisioned_gb(2.0) == (
            pytest.approx(expected)
        )

    def test_savings_shrink_with_overhead(self, study):
        plain = study.redundant_savings(1.0)
        replica = study.redundant_savings(2.0)
        parity = study.redundant_savings(1.25)
        assert replica < parity < plain
        # Buying the blade many times over must eventually cost more
        # DRAM than statistical multiplexing saves.
        assert study.redundant_savings(8.0) < 0.0

    def test_invalid_overhead_rejected(self, study):
        with pytest.raises(ValueError):
            study.redundant_ensemble_provisioned_gb(0.9)
