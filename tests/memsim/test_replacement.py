"""Tests (incl. property-based) of the replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.replacement import LruPolicy, RandomPolicy, make_policy


class TestLruPolicy:
    def test_first_touch_misses_second_hits(self):
        lru = LruPolicy(4)
        assert not lru.access(1)
        assert lru.access(1)

    def test_evicts_least_recently_used(self):
        lru = LruPolicy(2)
        lru.access(1)
        lru.access(2)
        lru.access(1)       # refresh 1; LRU victim is now 2
        lru.access(3)       # evicts 2
        assert lru.access(1)
        assert not lru.access(2)

    def test_capacity_respected(self):
        lru = LruPolicy(3)
        for page in range(10):
            lru.access(page)
        assert lru.resident_pages() == 3

    def test_scan_through_large_set_thrashes(self):
        lru = LruPolicy(4)
        for page in range(8):
            lru.access(page)
        # A second identical scan misses everything (classic LRU thrash).
        assert not any(lru.access(page) for page in range(4))


class TestRandomPolicy:
    def test_hit_after_insert(self):
        policy = RandomPolicy(4, seed=1)
        assert not policy.access(7)
        assert policy.access(7)

    def test_capacity_respected(self):
        policy = RandomPolicy(5, seed=2)
        for page in range(100):
            policy.access(page)
        assert policy.resident_pages() == 5

    def test_deterministic_by_seed(self):
        def misses(seed):
            policy = RandomPolicy(8, seed=seed)
            return [policy.access(p % 12) for p in range(200)]

        assert misses(3) == misses(3)


class TestFactory:
    def test_makes_both_policies(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("random", 4), RandomPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("clock", 4)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)


class TestPolicyProperties:
    @given(
        policy_name=st.sampled_from(["lru", "random"]),
        capacity=st.integers(min_value=1, max_value=32),
        pages=st.lists(st.integers(min_value=0, max_value=100), max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, policy_name, capacity, pages):
        """A hit requires a prior access; occupancy never exceeds capacity;
        a trace that fits entirely misses each page exactly once."""
        policy = make_policy(policy_name, capacity, seed=1)
        seen = set()
        for page in pages:
            hit = policy.access(page)
            if hit:
                assert page in seen
            seen.add(page)
            assert policy.resident_pages() <= capacity

    @given(pages=st.lists(st.integers(min_value=0, max_value=9), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_full_fit_never_misses_twice(self, pages):
        policy = LruPolicy(16)  # all 10 possible pages fit
        misses = sum(not policy.access(p) for p in pages)
        assert misses == len(set(pages))
