"""Tests of static vs dynamic memory provisioning (Figure 4(c))."""

import pytest

from repro.costmodel.components import ComponentSpec
from repro.experiments.figure4 import provisioning_efficiencies
from repro.memsim.provisioning import (
    DYNAMIC_PROVISIONING,
    STATIC_PARTITIONING,
    ProvisioningScheme,
    provisioned_memory_spec,
)


class TestSchemes:
    def test_static_keeps_total_capacity(self):
        assert STATIC_PARTITIONING.total_fraction == pytest.approx(1.0)

    def test_dynamic_is_85_percent(self):
        """Paper: 25% local + 60% on blades = 85% of baseline."""
        assert DYNAMIC_PROVISIONING.total_fraction == pytest.approx(0.85)

    def test_cost_factor_applies_remote_discount(self):
        # static: 0.25 + 0.75 * 0.76
        assert STATIC_PARTITIONING.memory_cost_factor() == pytest.approx(0.82)
        assert DYNAMIC_PROVISIONING.memory_cost_factor() == pytest.approx(0.706)

    def test_power_factor_applies_powerdown(self):
        # static: 0.25 + 0.75 * 0.10
        assert STATIC_PARTITIONING.memory_power_factor() == pytest.approx(0.325)
        assert DYNAMIC_PROVISIONING.memory_power_factor() == pytest.approx(0.31)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProvisioningScheme("bad", local_fraction=0.0, remote_fraction=0.5)
        with pytest.raises(ValueError):
            ProvisioningScheme("bad", local_fraction=0.5, remote_fraction=0.6)


class TestProvisionedMemorySpec:
    def test_includes_pcie_overheads(self):
        baseline = ComponentSpec(160.0, 18.0)
        spec = provisioned_memory_spec(baseline, DYNAMIC_PROVISIONING)
        assert spec.cost_usd == pytest.approx(160 * 0.706 + 10.0)
        assert spec.power_w == pytest.approx(18 * 0.31 + 1.45)

    def test_provisioned_memory_is_cheaper_and_cooler(self):
        baseline = ComponentSpec(350.0, 25.0)
        for scheme in (STATIC_PARTITIONING, DYNAMIC_PROVISIONING):
            spec = provisioned_memory_spec(baseline, scheme)
            assert spec.cost_usd < baseline.cost_usd
            assert spec.power_w < baseline.power_w


class TestFigure4c:
    """Paper values: static 102%/116%/108%, dynamic 106%/116%/111%."""

    @pytest.fixture(scope="class")
    def efficiencies(self):
        return provisioning_efficiencies()

    def test_static_inf_gain_is_negligible(self, efficiencies):
        assert efficiencies["static"]["perf_per_inf"] == pytest.approx(1.02, abs=0.03)

    def test_dynamic_inf_gain_larger(self, efficiencies):
        assert efficiencies["dynamic"]["perf_per_inf"] == pytest.approx(1.06, abs=0.03)
        assert (
            efficiencies["dynamic"]["perf_per_inf"]
            > efficiencies["static"]["perf_per_inf"]
        )

    def test_power_gains_substantial(self, efficiencies):
        for scheme in ("static", "dynamic"):
            assert efficiencies[scheme]["perf_per_watt"] == pytest.approx(
                1.16, abs=0.08
            )

    def test_tco_gains_match_paper_band(self, efficiencies):
        assert efficiencies["static"]["perf_per_tco"] == pytest.approx(1.08, abs=0.04)
        assert efficiencies["dynamic"]["perf_per_tco"] == pytest.approx(1.11, abs=0.04)
