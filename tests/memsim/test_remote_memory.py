"""Tests of the explicit remote-memory traffic model."""

import pytest

from repro.cluster.balancer import ClusterSimulator
from repro.memsim.remote_memory import (
    DEFAULT_TRAP_OVERHEAD_US,
    RemoteMemoryModel,
    make_remote_memory_model,
)
from repro.memsim.twolevel import CBF_PAGE_LATENCY_US, PCIE_X4_PAGE_LATENCY_US
from repro.platforms.catalog import platform
from repro.workloads.base import ResourceDemand
from repro.workloads.suite import make_workload

_DEMAND = ResourceDemand(cpu_ms_ref=40.0)


def _model(miss_rate=0.2, touches=55.0, **kw):
    return RemoteMemoryModel(
        workload_name="websearch",
        miss_rate=miss_rate,
        touches_per_ms=touches,
        **kw,
    )


class TestRemoteMemoryModel:
    def test_misses_scale_with_cpu_work(self):
        model = _model()
        small = model.misses_per_request(ResourceDemand(cpu_ms_ref=10.0))
        large = model.misses_per_request(ResourceDemand(cpu_ms_ref=40.0))
        assert large == pytest.approx(4 * small)

    def test_link_time_formula(self):
        model = _model(miss_rate=0.1, touches=50.0)
        # 50 * 40 * 0.1 = 200 misses * 4 us = 0.8 ms
        assert model.link_time_ms(_DEMAND) == pytest.approx(0.8)

    def test_trap_time_uses_cpu_overhead(self):
        model = _model(miss_rate=0.1, touches=50.0)
        assert model.trap_cpu_ms(_DEMAND) == pytest.approx(
            200 * DEFAULT_TRAP_OVERHEAD_US / 1000.0
        )

    def test_cbf_link_time_smaller(self):
        pcie = _model(page_latency_us=PCIE_X4_PAGE_LATENCY_US)
        cbf = _model(page_latency_us=CBF_PAGE_LATENCY_US)
        assert cbf.link_time_ms(_DEMAND) < pcie.link_time_ms(_DEMAND) / 4

    def test_validation(self):
        with pytest.raises(ValueError):
            _model(miss_rate=1.5)
        with pytest.raises(ValueError):
            _model(local_fraction=0.0)
        with pytest.raises(ValueError):
            _model(page_latency_us=-1.0)


class TestMakeRemoteMemoryModel:
    def test_builds_from_trace_simulation(self):
        # Short traces under-report capacity misses (warmup dominates);
        # use a couple of footprint passes.
        model = make_remote_memory_model("websearch", trace_length=200_000)
        assert 0.05 < model.miss_rate < 0.5
        assert model.touches_per_ms == 55.0

    def test_smaller_local_memory_more_misses(self):
        loose = make_remote_memory_model(
            "websearch", local_fraction=0.5, trace_length=80_000
        )
        tight = make_remote_memory_model(
            "websearch", local_fraction=0.125, trace_length=80_000
        )
        assert tight.miss_rate > loose.miss_rate

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_remote_memory_model("sort")


class TestClusterIntegration:
    def test_blade_contention_negligible_at_enclosure_scale(self):
        """The paper's simplification checked: <=8 servers per blade see
        no meaningful penalty from the shared link."""
        plat = platform("emb1")
        workload = make_workload("websearch")
        remote = make_remote_memory_model("websearch", trace_length=80_000)
        kwargs = dict(
            servers=8, clients_per_server=6,
            warmup_requests=150, measure_requests=1200,
        )
        contended = ClusterSimulator(
            plat, workload, remote_memory=remote, **kwargs
        ).run()
        baseline = ClusterSimulator(plat, workload, **kwargs).run()
        penalty = 1.0 - contended.per_server_rps / baseline.per_server_rps
        assert penalty < 0.08

    def test_saturated_blade_throttles_the_cluster(self):
        """Sanity check the mechanism: an artificially slow blade link
        becomes the bottleneck."""
        plat = platform("emb1")
        workload = make_workload("websearch")
        slow_blade = RemoteMemoryModel(
            workload_name="websearch",
            miss_rate=0.5,
            touches_per_ms=55.0,
            page_latency_us=100.0,  # pathological link
        )
        kwargs = dict(
            servers=4, clients_per_server=6,
            warmup_requests=150, measure_requests=1000,
        )
        throttled = ClusterSimulator(
            plat, workload, remote_memory=slow_blade, **kwargs
        ).run()
        baseline = ClusterSimulator(plat, workload, **kwargs).run()
        assert throttled.throughput_rps < 0.7 * baseline.throughput_rps
