"""Tests of the two-level memory simulator and slowdown model."""

import pytest

from repro.memsim.trace import WORKLOAD_TRACES, PageTraceSpec
from repro.memsim.twolevel import (
    CBF_PAGE_LATENCY_US,
    PCIE_X4_PAGE_LATENCY_US,
    TwoLevelMemorySimulator,
    slowdown_fraction,
)

_FAST_TRACE = 80_000


class TestSlowdownFraction:
    def test_formula(self):
        # 50 touches/ms * 10% misses * 4 us = 2% slowdown.
        assert slowdown_fraction(0.1, 50.0, 4.0) == pytest.approx(0.02)

    def test_cbf_is_cheaper_than_pcie(self):
        assert CBF_PAGE_LATENCY_US < PCIE_X4_PAGE_LATENCY_US

    def test_validation(self):
        with pytest.raises(ValueError):
            slowdown_fraction(1.5, 10.0, 4.0)
        with pytest.raises(ValueError):
            slowdown_fraction(0.5, -1.0, 4.0)


class TestTwoLevelSimulator:
    def test_full_local_memory_never_misses_after_warmup(self):
        spec = WORKLOAD_TRACES["webmail"]
        sim = TwoLevelMemorySimulator(spec, local_fraction=1.0)
        stats = sim.run(_FAST_TRACE)
        assert stats.miss_rate == 0.0

    def test_miss_rate_decreases_with_local_fraction(self):
        spec = WORKLOAD_TRACES["websearch"]
        rates = [
            TwoLevelMemorySimulator(spec, f).run(_FAST_TRACE).miss_rate
            for f in (0.125, 0.25, 0.5)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_lru_beats_random_on_skewed_traces(self):
        spec = PageTraceSpec(
            "skewed", footprint_pages=8192, zipf_alpha=1.3,
            sequential_fraction=0.0, touches_per_ms=10.0,
        )
        lru = TwoLevelMemorySimulator(spec, 0.25, policy="lru").run(_FAST_TRACE)
        rnd = TwoLevelMemorySimulator(spec, 0.25, policy="random").run(_FAST_TRACE)
        assert lru.miss_rate <= rnd.miss_rate * 1.05

    def test_policies_are_close_overall(self):
        """Paper: 'LRU results are nearly the same' as random."""
        spec = WORKLOAD_TRACES["websearch"]
        lru = TwoLevelMemorySimulator(spec, 0.25, policy="lru").run(_FAST_TRACE)
        rnd = TwoLevelMemorySimulator(spec, 0.25, policy="random").run(_FAST_TRACE)
        assert lru.miss_rate == pytest.approx(rnd.miss_rate, abs=0.1)

    def test_slowdown_uses_spec_touch_rate(self):
        spec = WORKLOAD_TRACES["webmail"]
        sim = TwoLevelMemorySimulator(spec, 0.25)
        stats = sim.run(_FAST_TRACE)
        expected = slowdown_fraction(
            stats.miss_rate, spec.touches_per_ms, PCIE_X4_PAGE_LATENCY_US
        )
        assert sim.slowdown(PCIE_X4_PAGE_LATENCY_US, _FAST_TRACE) == pytest.approx(
            expected
        )

    def test_local_fraction_validation(self):
        spec = WORKLOAD_TRACES["webmail"]
        with pytest.raises(ValueError):
            TwoLevelMemorySimulator(spec, 0.0)
        with pytest.raises(ValueError):
            TwoLevelMemorySimulator(spec, 1.5)


class TestPaperFigure4b:
    """Shape of Figure 4(b) at 25% local, random replacement, PCIe 4us."""

    @pytest.fixture(scope="class")
    def slowdowns(self):
        out = {}
        for name, spec in WORKLOAD_TRACES.items():
            sim = TwoLevelMemorySimulator(spec, 0.25, policy="random")
            out[name] = sim.slowdown(PCIE_X4_PAGE_LATENCY_US)
        return out

    def test_websearch_has_largest_slowdown(self, slowdowns):
        assert slowdowns["websearch"] == max(slowdowns.values())

    def test_all_slowdowns_under_ten_percent(self, slowdowns):
        assert all(s < 0.10 for s in slowdowns.values())

    def test_webmail_and_wc_nearly_unaffected(self, slowdowns):
        assert slowdowns["webmail"] < 0.005
        assert slowdowns["mapred-wc"] < 0.01

    def test_values_near_paper(self, slowdowns):
        paper = {
            "websearch": 0.047,
            "webmail": 0.001,
            "ytube": 0.014,
            "mapred-wc": 0.002,
            "mapred-wr": 0.007,
        }
        for name, expected in paper.items():
            assert slowdowns[name] == pytest.approx(expected, abs=0.012), name
