"""Tests (incl. property-based) of the page-trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.trace import PageTraceSpec, WORKLOAD_TRACES, generate_trace


def _spec(**kw):
    defaults = dict(
        name="t",
        footprint_pages=4096,
        zipf_alpha=1.0,
        sequential_fraction=0.2,
        touches_per_ms=10.0,
    )
    defaults.update(kw)
    return PageTraceSpec(**defaults)


class TestWorkloadTraces:
    def test_all_five_benchmarks_have_specs(self):
        assert set(WORKLOAD_TRACES) == {
            "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr",
        }

    def test_websearch_and_ytube_have_largest_footprints(self):
        """Paper: these two have the largest memory usage."""
        footprints = {n: s.footprint_pages for n, s in WORKLOAD_TRACES.items()}
        largest = max(footprints.values())
        assert footprints["websearch"] == largest
        assert footprints["ytube"] == largest


class TestGenerateTrace:
    def test_length_and_range(self):
        spec = _spec()
        trace = generate_trace(spec, 10_000, seed=1)
        assert len(trace) == 10_000
        assert trace.min() >= 0
        assert trace.max() < spec.footprint_pages

    def test_deterministic_by_seed(self):
        spec = _spec()
        a = generate_trace(spec, 5000, seed=7)
        b = generate_trace(spec, 5000, seed=7)
        assert np.array_equal(a, b)
        c = generate_trace(spec, 5000, seed=8)
        assert not np.array_equal(a, c)

    def test_zipf_skew_visible(self):
        spec = _spec(zipf_alpha=1.2, sequential_fraction=0.0)
        trace = generate_trace(spec, 50_000, seed=2)
        _, counts = np.unique(trace, return_counts=True)
        counts.sort()
        # The hottest page gets far more than the median page.
        assert counts[-1] > 10 * max(counts[len(counts) // 2], 1)

    def test_sequential_runs_present(self):
        spec = _spec(sequential_fraction=1.0)
        trace = generate_trace(spec, 2048, seed=3)
        diffs = np.diff(trace)
        consecutive = np.mean((diffs == 1) | (diffs == 1 - spec.footprint_pages))
        assert consecutive > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(_spec(), 0)
        with pytest.raises(ValueError):
            _spec(footprint_pages=0)
        with pytest.raises(ValueError):
            _spec(sequential_fraction=1.5)
        with pytest.raises(ValueError):
            _spec(touches_per_ms=0.0)
        with pytest.raises(ValueError):
            _spec(run_length=0)

    @given(
        footprint=st.integers(min_value=16, max_value=4096),
        alpha=st.floats(min_value=0.0, max_value=2.0),
        seq=st.floats(min_value=0.0, max_value=1.0),
        length=st.integers(min_value=1, max_value=5000),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_parameters_yield_valid_trace(self, footprint, alpha, seq, length, seed):
        spec = _spec(
            footprint_pages=footprint, zipf_alpha=alpha, sequential_fraction=seq
        )
        trace = generate_trace(spec, length, seed=seed)
        assert len(trace) == length
        assert (trace >= 0).all() and (trace < footprint).all()
