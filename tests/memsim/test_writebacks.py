"""Tests of eviction/writeback accounting in the two-level simulator."""


from repro.memsim.replacement import LruPolicy, RandomPolicy
from repro.memsim.trace import WORKLOAD_TRACES
from repro.memsim.twolevel import TwoLevelMemorySimulator


class TestEvictionCounters:
    def test_no_evictions_until_full(self):
        lru = LruPolicy(4)
        for page in range(4):
            lru.access(page)
        assert lru.evictions == 0
        lru.access(99)
        assert lru.evictions == 1

    def test_every_overflowing_miss_evicts(self):
        policy = RandomPolicy(3, seed=1)
        for page in range(10):
            policy.access(page)
        assert policy.evictions == 7

    def test_hits_never_evict(self):
        lru = LruPolicy(2)
        lru.access(1)
        lru.access(1)
        lru.access(1)
        assert lru.evictions == 0


class TestWritebackStats:
    def test_writebacks_tracked_in_window(self):
        spec = WORKLOAD_TRACES["websearch"]
        stats = TwoLevelMemorySimulator(spec, 0.25).run(150_000)
        assert stats.writebacks > 0
        assert stats.blade_transfers == stats.misses + stats.writebacks

    def test_exclusive_design_writebacks_track_misses(self):
        """In steady state every fetch displaces a victim: writebacks
        approximately equal misses plus the window's cold fills."""
        spec = WORKLOAD_TRACES["websearch"]
        stats = TwoLevelMemorySimulator(spec, 0.25).run(300_000)
        assert stats.writebacks >= stats.misses
        # Bounded by misses + compulsory fills in the window.
        assert stats.writebacks <= stats.accesses

    def test_full_local_memory_never_writes_back(self):
        spec = WORKLOAD_TRACES["webmail"]
        stats = TwoLevelMemorySimulator(spec, 1.0).run(80_000)
        assert stats.writebacks == 0
        assert stats.blade_transfers == 0
