"""Integration tests: the paper's headline results, end to end.

These run the full DES pipeline (slower than unit tests) and assert the
*shape* landmarks of every evaluation artifact:

- Figure 2(c): which systems win where, the CPU-bound/IO-bound split, the
  emb1->emb2 inflection, and desk's Perf/TCO-$ advantage validating the
  commodity-desktop practice.
- Table 3(b): laptop disks alone lose on Perf/Inf-$; the flash cache
  recovers the loss.
- Figure 5: N1 ~1.4-1.5x and N2 >=1.5x average Perf/TCO-$; multi-x wins
  on ytube/mapreduce; webmail degradation.
"""

import pytest

from repro.core.analysis import evaluate_designs
from repro.core.designs import baseline_design, n1_design, n2_design
from repro.experiments.table3 import configuration_efficiencies
from repro.simulator.performance import relative_performance_matrix
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import benchmark_names

_CONFIG = SimConfig(warmup_requests=200, measure_requests=1500, seed=1)
_SYSTEMS = ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"]


@pytest.fixture(scope="module")
def perf_matrix():
    return relative_performance_matrix(
        _SYSTEMS, benchmark_names(), method="sim", config=_CONFIG
    )


class TestFigure2cShape:
    def test_baseline_is_unity(self, perf_matrix):
        for bench in perf_matrix:
            assert perf_matrix[bench]["srvr1"] == pytest.approx(1.0)

    def test_monotone_degradation_down_the_lineup(self, perf_matrix):
        """srvr2 >= desk >= mobl >= emb1 >= emb2 on every benchmark."""
        order = ["srvr2", "desk", "mobl", "emb1", "emb2"]
        for bench, row in perf_matrix.items():
            values = [row[s] for s in order]
            for a, b in zip(values, values[1:]):
                assert a >= b * 0.93, (bench, values)

    def test_io_bound_rows_flat_cpu_bound_rows_steep(self, perf_matrix):
        """ytube/mapreduce degrade far less than websearch/webmail
        (paper: 'intuitive given these workloads are not CPU-intensive')."""
        for io_bench in ("ytube", "mapred-wc", "mapred-wr"):
            assert perf_matrix[io_bench]["desk"] > 0.6
        for cpu_bench in ("websearch", "webmail"):
            assert perf_matrix[cpu_bench]["desk"] < 0.5

    def test_emb1_to_emb2_inflection(self, perf_matrix):
        """Paper: 'much more dramatic inflection at the transition
        between emb1 and emb2' for the non-CPU-bound workloads."""
        for bench in ("ytube", "mapred-wc", "mapred-wr"):
            row = perf_matrix[bench]
            assert row["emb2"] < 0.45 * row["emb1"], bench

    def test_paper_cells_within_band(self, perf_matrix):
        """Every cell within 15 percentage points of the paper's value
        (absolute), documenting the calibration quality."""
        paper = {
            "websearch": dict(srvr2=0.68, desk=0.36, mobl=0.34, emb1=0.24, emb2=0.11),
            "webmail": dict(srvr2=0.48, desk=0.19, mobl=0.17, emb1=0.11, emb2=0.05),
            "ytube": dict(srvr2=0.97, desk=0.92, mobl=0.95, emb1=0.86, emb2=0.24),
            "mapred-wc": dict(srvr2=0.93, desk=0.78, mobl=0.72, emb1=0.51, emb2=0.12),
            "mapred-wr": dict(srvr2=0.72, desk=0.70, mobl=0.54, emb1=0.48, emb2=0.16),
        }
        # mapred-wr on mobl is inconsistent within the paper itself (desk
        # 70% vs mobl 54% with a 10% slower clock and otherwise identical
        # hardware); no smooth hardware model reproduces both, so that one
        # cell gets a wider band.  See EXPERIMENTS.md.
        wide_band = {("mapred-wr", "mobl")}
        for bench, row in paper.items():
            for system, expected in row.items():
                got = perf_matrix[bench][system]
                band = 0.26 if (bench, system) in wide_band else 0.16
                assert got == pytest.approx(expected, abs=band), (bench, system)


class TestLowEndEfficiency:
    """Figure 2(c) efficiency landmarks."""

    @pytest.fixture(scope="class")
    def evaluation(self, perf_matrix):
        designs = [baseline_design(name) for name in _SYSTEMS]
        return evaluate_designs(
            designs, benchmark_names(), baseline="srvr1",
            method="sim", config=_CONFIG,
        )

    def test_desk_beats_srvr1_on_perf_per_tco(self, evaluation):
        """Paper: desk validates the commodity-desktop practice (132%)."""
        assert evaluation.table("Perf/TCO-$").hmean("desk") > 1.1

    def test_emb1_is_the_best_low_end_platform(self, evaluation):
        table = evaluation.table("Perf/TCO-$")
        assert table.hmean("emb1") > table.hmean("emb2")
        assert table.hmean("emb1") > 1.0

    def test_embedded_wins_big_on_io_bound_workloads(self, evaluation):
        """Paper: emb1 achieves 3-6x Perf/TCO-$ on ytube and mapreduce."""
        table = evaluation.table("Perf/TCO-$")
        for bench in ("ytube", "mapred-wc", "mapred-wr"):
            assert table.value(bench, "emb1") > 3.0, bench

    def test_webmail_perf_per_dollar_degrades_on_low_end(self, evaluation):
        """Paper: 'webmail achieves a net degradation in performance/$'."""
        assert evaluation.table("Perf/TCO-$").value("webmail", "desk") < 1.0

    def test_mobile_shines_on_perf_per_watt(self, evaluation):
        """Paper: 'Perf/W results show stronger improvements for the
        mobile systems'."""
        table = evaluation.table("Perf/W")
        assert table.hmean("mobl") > evaluation.table("Perf/Inf-$").hmean("mobl")


class TestTable3bLandmarks:
    @pytest.fixture(scope="class")
    def efficiencies(self):
        return configuration_efficiencies(method="sim", config=_CONFIG)

    def test_laptop_alone_not_beneficial(self, efficiencies):
        """Paper: 'just using low-power laptop disks alone is not
        beneficial from a performance/$ perspective'."""
        assert efficiencies["remote-laptop"]["perf_per_inf"] < 1.0

    def test_flash_cache_recovers_performance(self, efficiencies):
        """Paper: flash provides ~8% performance improvement over the
        remote laptop disk and better Perf/$ than the baseline."""
        gain = (
            efficiencies["remote-laptop+flash"]["perf"]
            / efficiencies["remote-laptop"]["perf"]
        )
        assert 1.03 < gain < 1.2
        assert efficiencies["remote-laptop+flash"]["perf_per_tco"] > 0.97

    def test_cheaper_laptop2_is_best(self, efficiencies):
        """Paper: laptop-2 gives ~10% better performance/$."""
        assert efficiencies["remote-laptop2+flash"]["perf_per_tco"] > 1.04
        assert (
            efficiencies["remote-laptop2+flash"]["perf_per_inf"]
            > efficiencies["remote-laptop+flash"]["perf_per_inf"]
        )

    def test_power_efficiency_improves_with_low_power_disks(self, efficiencies):
        assert efficiencies["remote-laptop+flash"]["perf_per_watt"] > 1.0


class TestFigure5Landmarks:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return evaluate_designs(
            [baseline_design("srvr1"), n1_design(), n2_design()],
            benchmark_names(),
            baseline="srvr1",
            method="sim",
            config=_CONFIG,
        )

    def test_headline_average_improvements(self, evaluation):
        """Paper: 1.5x (N1) to 2x (N2) average Perf/TCO-$.  Our
        calibration lands N1 ~1.4x and N2 ~1.5x (see EXPERIMENTS.md)."""
        table = evaluation.table("Perf/TCO-$")
        assert table.hmean("N1") > 1.25
        assert table.hmean("N2") > 1.35
        assert table.hmean("N2") > table.hmean("N1") * 0.95

    def test_multi_x_wins_on_ytube_and_mapreduce(self, evaluation):
        """Paper: 2-3.5x for N1 and 3.5-6x for N2 on these benchmarks."""
        table = evaluation.table("Perf/TCO-$")
        for bench in ("ytube", "mapred-wc", "mapred-wr"):
            assert table.value(bench, "N1") > 2.0, bench
            assert table.value(bench, "N2") > 3.0, bench
            assert table.value(bench, "N2") > table.value(bench, "N1"), bench

    def test_webmail_degrades(self, evaluation):
        """Paper: webmail sees degradations (~40% N1, ~20% N2)."""
        table = evaluation.table("Perf/TCO-$")
        assert table.value("webmail", "N1") < 0.85
        assert table.value("webmail", "N2") < 0.85

    def test_benefits_from_both_cost_and_power(self, evaluation):
        """Paper: 'these benefits are equally from infrastructure costs
        and power savings'."""
        for design in ("N1", "N2"):
            assert evaluation.table("Perf/Inf-$").hmean(design) > 1.15
            assert evaluation.table("Perf/W").hmean(design) > 1.3
