"""Tests of the heterogeneous-fleet optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.heterogeneous import FleetOptimizer

_THROUGHPUT = {
    "search": {"big": 100.0, "small": 20.0},
    "media": {"big": 100.0, "small": 95.0},
}
_TCO = {"big": 5000.0, "small": 800.0}


@pytest.fixture
def optimizer():
    return FleetOptimizer(_THROUGHPUT, _TCO)


class TestFleetOptimizer:
    def test_homogeneous_plan_sizes_by_ceiling(self, optimizer):
        plan = optimizer.homogeneous_plan("big", {"search": 250.0, "media": 50.0})
        by_service = {a.service: a for a in plan.assignments}
        assert by_service["search"].servers == 3  # ceil(250/100)
        assert by_service["media"].servers == 1
        assert plan.total_cost_usd == 4 * 5000.0

    def test_heterogeneous_picks_per_service_optimum(self, optimizer):
        demand = {"search": 1000.0, "media": 1000.0}
        plan = optimizer.heterogeneous_plan(demand)
        # search: big needs 10 x $5000 = $50k; small needs 50 x $800 = $40k.
        assert plan.platform_of("search") == "small"
        # media: big needs 10 x $5000 = 50k; small 11 x $800 ~ $8.8k.
        assert plan.platform_of("media") == "small"

    def test_mixing_wins_when_services_disagree(self):
        throughput = {
            "cpu-bound": {"big": 100.0, "small": 10.0},
            "io-bound": {"big": 100.0, "small": 95.0},
        }
        optimizer = FleetOptimizer(throughput, _TCO)
        demand = {"cpu-bound": 10_000.0, "io-bound": 10_000.0}
        premium = optimizer.homogeneity_premium(demand)
        assert premium > 0.0
        hetero = optimizer.heterogeneous_plan(demand)
        assert hetero.platform_of("cpu-bound") == "big"
        assert hetero.platform_of("io-bound") == "small"

    def test_heterogeneous_never_costs_more(self, optimizer):
        demand = {"search": 5000.0, "media": 3000.0}
        assert optimizer.homogeneity_premium(demand) >= 0.0

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            FleetOptimizer({}, _TCO)
        with pytest.raises(ValueError):
            FleetOptimizer(
                {"a": {"big": 1.0}, "b": {"small": 1.0}}, _TCO
            )
        with pytest.raises(KeyError):
            optimizer.homogeneous_plan("medium", {"search": 1.0, "media": 1.0})
        with pytest.raises(KeyError):
            optimizer.heterogeneous_plan({"video": 1.0})
        with pytest.raises(ValueError):
            optimizer.heterogeneous_plan({"search": 0.0, "media": 1.0})

    @given(
        demands=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=2
        ),
        tco_small=st.floats(min_value=100.0, max_value=10_000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_premium_is_never_negative(self, demands, tco_small):
        optimizer = FleetOptimizer(
            _THROUGHPUT, {"big": 5000.0, "small": tco_small}
        )
        demand = {"search": demands[0], "media": demands[1]}
        assert optimizer.homogeneity_premium(demand) >= -1e-9
