"""Tests of the diurnal load and ensemble energy models."""

import pytest

from repro.cluster.diurnal import DiurnalLoadModel, EnsembleEnergyModel


class TestDiurnalLoadModel:
    def test_peak_is_one_at_peak_hour(self):
        profile = DiurnalLoadModel(peak_to_trough=3.0, peak_hour=20.0)
        assert profile.load_at(20.0) == pytest.approx(1.0)

    def test_trough_is_reciprocal_of_ratio(self):
        profile = DiurnalLoadModel(peak_to_trough=4.0, peak_hour=12.0)
        assert profile.load_at(0.0) == pytest.approx(0.25)

    def test_profile_has_24_samples_in_range(self):
        profile = DiurnalLoadModel()
        samples = profile.hourly_profile()
        assert len(samples) == 24
        assert all(0 < s <= 1.0 for s in samples)

    def test_mean_utilization_between_trough_and_peak(self):
        profile = DiurnalLoadModel(peak_to_trough=3.0)
        assert 1 / 3 < profile.mean_utilization < 1.0

    def test_flat_profile_when_ratio_is_one(self):
        profile = DiurnalLoadModel(peak_to_trough=1.0)
        assert profile.mean_utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoadModel(peak_to_trough=0.5)
        with pytest.raises(ValueError):
            DiurnalLoadModel(peak_hour=25.0)


class TestEnsembleEnergyModel:
    def test_idle_floor(self):
        model = EnsembleEnergyModel(peak_power_w=100.0, idle_power_fraction=0.6)
        assert model.server_power_w(0.0) == pytest.approx(60.0)
        assert model.server_power_w(1.0) == pytest.approx(100.0)
        assert model.server_power_w(0.5) == pytest.approx(80.0)

    def test_parking_saves_energy(self):
        profile = DiurnalLoadModel(peak_to_trough=3.0)
        managed = EnsembleEnergyModel(100.0, 0.6, parkable_fraction=0.5)
        assert managed.parking_savings(100, profile) > 0.05

    def test_no_parking_no_savings(self):
        profile = DiurnalLoadModel()
        unmanaged = EnsembleEnergyModel(100.0, 0.6, parkable_fraction=0.0)
        assert unmanaged.parking_savings(100, profile) == pytest.approx(0.0)

    def test_parking_gains_grow_with_idle_power(self):
        """Parking pays off most for energy-disproportional servers."""
        profile = DiurnalLoadModel(peak_to_trough=3.0)
        hot_idle = EnsembleEnergyModel(100.0, 0.8, parkable_fraction=0.5)
        cool_idle = EnsembleEnergyModel(100.0, 0.2, parkable_fraction=0.5)
        assert hot_idle.parking_savings(100, profile) > cool_idle.parking_savings(
            100, profile
        )

    def test_daily_energy_bounds(self):
        profile = DiurnalLoadModel(peak_to_trough=3.0)
        model = EnsembleEnergyModel(100.0, 0.6)
        kwh = model.daily_energy_kwh(10, profile)
        # Bounded by 24h at idle and 24h at peak.
        assert 0.6 * 24 <= kwh <= 1.0 * 24

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleEnergyModel(0.0)
        with pytest.raises(ValueError):
            EnsembleEnergyModel(100.0, idle_power_fraction=1.5)
        with pytest.raises(ValueError):
            EnsembleEnergyModel(100.0, parkable_fraction=1.0)
        model = EnsembleEnergyModel(100.0)
        with pytest.raises(ValueError):
            model.server_power_w(1.5)
        with pytest.raises(ValueError):
            model.fleet_power_w(0, 0.5)
