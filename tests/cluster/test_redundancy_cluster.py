"""Cluster-level redundancy: digest identity, blade storms, drains."""

import pytest

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.faults.recovery import (
    BladeFault,
    MaintenancePlan,
    MaintenanceWindow,
    RebuildPolicy,
    RedundancyConfig,
)
from repro.memsim.redundancy import RedundancyPolicy
from repro.memsim.remote_memory import make_remote_memory_model
from repro.platforms.catalog import platform
from repro.workloads.websearch import make_websearch

RETRY = RetryPolicy(
    timeout_ms=1000.0, max_retries=2, backoff_base_ms=20.0,
    hedge_after_ms=400.0,
)
STORM = (BladeFault(0, 500.0, 6_000.0),)
REBUILD = RebuildPolicy(chunk_pages=32, rate_pages_per_s=20_000.0)


def _redundancy(policy, blades, faults=()):
    return RedundancyConfig(
        policy=policy, blades=blades, pages_per_server=64,
        rebuild=REBUILD, blade_faults=tuple(faults),
    )


def _run(redundancy=None, maintenance=None, retry=None, measure=700):
    simulator = ClusterSimulator(
        platform("srvr1"),
        make_websearch(),
        servers=3,
        clients_per_server=4,
        seed=5,
        warmup_requests=80,
        measure_requests=measure,
        remote_memory=make_remote_memory_model(
            "websearch", local_fraction=0.25, trace_length=50_000
        ),
        retry=retry,
        redundancy=redundancy,
        maintenance=maintenance,
    )
    return simulator.run()


class TestHealthyDigestIdentity:
    """Redundancy-off and healthy redundancy-on are bit-identical."""

    def test_without_retry_policy(self):
        off = _run()
        on = _run(_redundancy(RedundancyPolicy.replicated(2), 3))
        assert off.stream_digest() == on.stream_digest()
        # A healthy protected run must not attach an all-zero fault
        # report the unprotected run lacks (that diverges the digest).
        assert off.fault_report is None
        assert on.fault_report is None

    def test_with_retry_policy(self):
        off = _run(retry=RETRY)
        on = _run(
            _redundancy(RedundancyPolicy.parity(4), 5), retry=RETRY
        )
        assert off.stream_digest() == on.stream_digest()

    def test_healthy_recovery_report_is_quiet(self):
        on = _run(_redundancy(RedundancyPolicy.replicated(2), 3))
        report = on.recovery_report
        assert report is not None
        assert report.blade_failures == 0
        assert report.pages_rebuilt == 0
        assert report.failover_requests == 0
        assert report.audit is not None and report.audit.conserved


class TestBladeStorm:
    def test_replica_rides_through_with_zero_loss(self):
        healthy = _run(
            _redundancy(RedundancyPolicy.replicated(2), 3), retry=RETRY
        )
        storm = _run(
            _redundancy(RedundancyPolicy.replicated(2), 3, STORM),
            retry=RETRY,
        )
        report = storm.recovery_report
        assert report.blade_failures == 1
        assert report.blade_repairs == 1
        assert report.failover_requests > 0
        assert report.lost_page_reads == 0
        assert report.lossy_requests == 0
        assert report.pages_rebuilt > 0
        assert report.audit.conserved
        assert report.audit.lost == 0 and report.audit.duplicated == 0
        assert not report.data_loss
        retention = storm.throughput_rps / healthy.throughput_rps
        assert retention >= 0.90

    def test_parity_reconstructs_under_storm(self):
        storm = _run(
            _redundancy(RedundancyPolicy.parity(4), 5, STORM),
            retry=RETRY,
        )
        report = storm.recovery_report
        # The hot path models reconstruction as latency amplification
        # on failed-over requests; the group's page counters only move
        # for the rebuild stream itself.
        assert report.failover_requests > 0
        assert report.pages_rebuilt > 0
        assert report.lost_page_reads == 0
        assert not report.data_loss

    def test_unprotected_storm_degrades_requests(self):
        storm = _run(_redundancy(None, 1, STORM), retry=RETRY)
        report = storm.recovery_report
        assert report.blade_failures == 1
        assert storm.fault_report.degraded_requests > 0
        assert report.blade_downtime_ms[0] > 0.0

    def test_parity_storm_changes_the_digest(self):
        # Replica failover reads cost the same as primary reads (1.0x
        # amplification), so a replica storm can legitimately leave the
        # stream unchanged.  Parity reconstruction amplifies reads kx,
        # which must show up in the response stream.
        healthy = _run(
            _redundancy(RedundancyPolicy.parity(4), 5), retry=RETRY
        )
        storm = _run(
            _redundancy(RedundancyPolicy.parity(4), 5, STORM),
            retry=RETRY,
        )
        assert healthy.stream_digest() != storm.stream_digest()

    def test_storm_is_deterministic(self):
        config = _redundancy(RedundancyPolicy.replicated(2), 3, STORM)
        first = _run(config, retry=RETRY)
        second = _run(config, retry=RETRY)
        assert first.stream_digest() == second.stream_digest()
        assert (
            first.recovery_report.pages_rebuilt
            == second.recovery_report.pages_rebuilt
        )
        assert (
            first.recovery_report.rebuild_ms
            == second.recovery_report.rebuild_ms
        )


class TestMaintenanceDrains:
    def test_rolling_windows_are_counted(self):
        plan = MaintenancePlan.rolling(
            3, start_ms=400.0, duration_ms=400.0, gap_ms=100.0
        )
        result = _run(
            _redundancy(RedundancyPolicy.replicated(2), 3),
            maintenance=plan, retry=RETRY, measure=900,
        )
        report = result.recovery_report
        assert report.drains == 3
        assert report.drain_ms > 0.0
        # Drains reroute work but never lose pages; the closed loop
        # still completes every measured request.
        assert report.lost_page_reads == 0
        assert sum(result.server_completions) == 900 + 80  # + warmup

    def test_out_of_range_window_rejected(self):
        plan = MaintenancePlan(
            windows=(MaintenanceWindow(7, 100.0, 50.0),)
        )
        with pytest.raises(ValueError, match="out of range"):
            _run(
                _redundancy(RedundancyPolicy.replicated(2), 3),
                maintenance=plan,
            )
