"""Cohort engine: digest equality, fallback routing, batched recording.

The vectorized serving-tier engine (``engine="cohort"``) must be
*invisible* except for wall-clock time: every supported configuration
produces a :meth:`ClusterResult.stream_digest` identical to the scalar
event loop's, and every unsupported configuration routes to the scalar
path with an explanatory ``fallback_reason`` rather than diverging.
"""

import pytest

from repro.cluster.balancer import ClusterSimulator, Dispatch, RetryPolicy
from repro.cluster.overload import OverloadPolicy, SurgeSchedule
from repro.faults.failslow import DetectionPolicy, FailSlowPlan, SlowResource
from repro.faults.model import ComponentType, FaultProfile, FaultSpec
from repro.faults.recovery import (
    MaintenancePlan,
    MaintenanceWindow,
    RebuildPolicy,
    RedundancyConfig,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.redundancy import RedundancyPolicy
from repro.obs import MetricsRegistry, Tracer
from repro.perf.cluster_kernels import clamp_phase_delay, cohort_supported
from repro.platforms.catalog import platform
from repro.simulator.engine import PAST_EPSILON_MS, PAST_RELATIVE_EPSILON
from repro.workloads.websearch import make_websearch


def _surge(measure_ms=1500.0, base_rate_rps=120.0):
    return SurgeSchedule(
        base_rate_rps=base_rate_rps,
        surge_multiplier=4.0,
        surge_start_ms=500.0 + 0.25 * measure_ms,
        surge_end_ms=500.0 + 0.5 * measure_ms,
    )


def _simulator(engine, **kwargs):
    defaults = dict(
        servers=3,
        clients_per_server=1,
        seed=11,
        arrivals=_surge(),
        warmup_ms=500.0,
        measure_ms=1500.0,
    )
    defaults.update(kwargs)
    return ClusterSimulator(
        platform("srvr1"), make_websearch(), engine=engine, **defaults
    )


def _run_pair(**kwargs):
    """Run scalar and cohort on the same config; return (sim, result) pairs."""
    scalar = _simulator("scalar", **kwargs)
    cohort = _simulator("cohort", **kwargs)
    return (scalar, scalar.run()), (cohort, cohort.run())


#: Open-loop configurations the cohort engine must reproduce bit-exactly.
EQUIVALENT_CONFIGS = {
    "bare": dict(retry=None),
    "naive-retry": dict(retry=RetryPolicy()),
    "bench-surge": dict(
        retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
        overload=OverloadPolicy(),
    ),
    "protected-jitter": dict(
        retry=RetryPolicy(
            timeout_ms=350.0, max_retries=2, backoff_base_ms=15.0, jitter=True
        ),
        overload=OverloadPolicy(),
    ),
    "hedge-heavy": dict(
        retry=RetryPolicy(
            timeout_ms=300.0, max_retries=2, hedge_after_ms=120.0
        ),
        overload=OverloadPolicy(),
    ),
    "round-robin": dict(
        retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
        overload=OverloadPolicy(),
        dispatch=Dispatch.ROUND_ROBIN,
    ),
}


class TestDigestEquality:
    @pytest.mark.parametrize("name", sorted(EQUIVALENT_CONFIGS))
    def test_cohort_matches_scalar(self, name):
        kwargs = EQUIVALENT_CONFIGS[name]
        (_, scalar), (csim, cohort) = _run_pair(**kwargs)
        assert csim.engine_used == "cohort", csim.fallback_reason
        assert scalar.stream_digest() == cohort.stream_digest()

    def test_failslow_injection_and_detection(self):
        """Drift + peer-comparison detection run on the cohort path."""
        kwargs = dict(
            retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
            overload=OverloadPolicy(),
            failslow=FailSlowPlan.single_slow_node(
                server=1, factor=6.0, resource=SlowResource.CPU, at_ms=600.0
            ),
            failslow_detection=DetectionPolicy(
                eval_interval_ms=250.0, min_window_samples=4
            ),
            measure_ms=2000.0,
        )
        (_, scalar), (csim, cohort) = _run_pair(**kwargs)
        assert csim.engine_used == "cohort", csim.fallback_reason
        assert scalar.stream_digest() == cohort.stream_digest()
        # The detector actually ran (not just a no-op equality).
        sr, cr = scalar.failslow_report, cohort.failslow_report
        assert cr.evaluations > 0
        assert (cr.drifting_servers, cr.evaluations, cr.suspect_flags,
                cr.ejections, cr.readmissions, cr.requarantines) == (
            sr.drifting_servers, sr.evaluations, sr.suspect_flags,
            sr.ejections, sr.readmissions, sr.requarantines)

    def test_metrics_snapshots_match(self):
        """Batched record_many flushes observe exactly the scalar stream."""
        m_scalar, m_cohort = MetricsRegistry(), MetricsRegistry()
        kwargs = dict(
            retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
            overload=OverloadPolicy(),
        )
        scalar = _simulator("scalar", metrics=m_scalar, **kwargs)
        cohort = _simulator("cohort", metrics=m_cohort, **kwargs)
        rs, rc = scalar.run(), cohort.run()
        assert cohort.engine_used == "cohort", cohort.fallback_reason
        assert rs.stream_digest() == rc.stream_digest()
        assert m_scalar.snapshot() == m_cohort.snapshot()

    def test_engine_used_reported_on_scalar_runs(self):
        sim = _simulator("scalar", retry=None, measure_ms=400.0)
        sim.run()
        assert sim.engine_used == "scalar"
        assert sim.fallback_reason is None


class TestFallbackRouting:
    """Unsupported features run scalar, with the reason recorded."""

    def _assert_falls_back(self, reason_fragment, **kwargs):
        sim = _simulator("cohort", **kwargs)
        ok, reason = cohort_supported(sim)
        assert not ok
        result = sim.run()
        assert sim.engine_used == "scalar"
        assert reason_fragment in sim.fallback_reason
        assert sim.fallback_reason == reason
        return result

    def test_closed_loop(self):
        self._assert_falls_back(
            "closed-loop",
            arrivals=None,
            warmup_requests=20,
            measure_requests=60,
            clients_per_server=4,
        )

    def test_tracer(self):
        self._assert_falls_back(
            "tracer", tracer=Tracer(sample_rate=1.0, seed=17),
            measure_ms=400.0,
        )

    def test_remote_memory(self):
        # cohort_supported only inspects the attribute, so a sentinel is
        # enough to prove routing without paying for a trace simulation.
        sim = _simulator("cohort", measure_ms=400.0)
        sim._remote_memory = object()
        ok, reason = cohort_supported(sim)
        assert not ok and "remote memory" in reason

    def test_stochastic_faults(self):
        spec = FaultSpec(mtbf_hours=20.0 / 3600.0, mttr_hours=2.0 / 3600.0)
        self._assert_falls_back(
            "fault injection",
            faults=FaultProfile("test", {ComponentType.SERVER: spec}),
            fault_seed=7,
            retry=RetryPolicy(timeout_ms=400.0, max_retries=1),
            measure_ms=400.0,
        )

    def test_scripted_failures(self):
        self._assert_falls_back(
            "failures/recoveries", failures={1: 600.0}, measure_ms=400.0,
        )

    def test_redundancy(self):
        # The constructor requires remote_memory alongside redundancy,
        # and the remote-memory check fires first; probe the redundancy
        # branch directly so its reason string stays covered.
        sim = _simulator("cohort", measure_ms=400.0)
        sim._redundancy = RedundancyConfig(
            policy=RedundancyPolicy.replicated(2),
            blades=3,
            pages_per_server=64,
            rebuild=RebuildPolicy(chunk_pages=32, rate_pages_per_s=20_000.0),
        )
        ok, reason = cohort_supported(sim)
        assert not ok and "redundancy" in reason

    def test_maintenance_windows(self):
        self._assert_falls_back(
            "maintenance",
            maintenance=MaintenancePlan(
                windows=(MaintenanceWindow(0, 100.0, 50.0),)
            ),
            measure_ms=400.0,
        )

    def test_flash_disk_model(self):
        config = disk_configuration("remote-laptop+flash")
        self._assert_falls_back(
            "disk model",
            disk_model_factory=lambda: config.make_disk_model("websearch"),
            measure_ms=400.0,
        )

    def test_explicit_scalar_never_reports_fallback(self):
        sim = _simulator(
            "scalar", tracer=Tracer(sample_rate=1.0, seed=17),
            measure_ms=400.0,
        )
        sim.run()
        assert sim.engine_used == "scalar"
        assert sim.fallback_reason is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _simulator("vector")


class TestClampPhaseDelay:
    def test_nonnegative_passthrough(self):
        assert clamp_phase_delay(5.0, 1000.0) == 5.0
        assert clamp_phase_delay(0.0, 1000.0) == 0.0

    def test_ulp_negative_clamps_to_zero(self):
        # One ulp below zero at a late clock: inside both epsilon terms.
        assert clamp_phase_delay(-1e-10, 0.0) == 0.0
        now = 1e7
        delay = -(PAST_EPSILON_MS + PAST_RELATIVE_EPSILON * now) * 0.99
        assert clamp_phase_delay(delay, now) == 0.0

    def test_relative_term_scales_with_clock(self):
        # Past the absolute epsilon alone, but inside the relative band
        # at a large clock -- the case a fixed epsilon would reject.
        delay = -2.0 * PAST_EPSILON_MS
        now = 1e4
        assert delay < -(PAST_EPSILON_MS + PAST_RELATIVE_EPSILON * 0.0)
        assert clamp_phase_delay(delay, now) == 0.0

    def test_genuinely_past_raises(self):
        with pytest.raises(ValueError, match="cannot schedule in the past"):
            clamp_phase_delay(-1.0, 0.0)
