"""Tracing must observe without perturbing: identical results, stable logs."""

import pytest

from repro.cluster import ClusterSimulator
from repro.experiments.availability import RETRY_POLICY, STRESS_FAULT_PROFILE
from repro.obs import MetricsRegistry, Tracer, exclusive_times, spans_jsonl
from repro.platforms import platform
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads import make_workload


def _cluster_run(tracer=None, metrics=None):
    """A small faulted cluster with retries + hedging (the hard case)."""
    return ClusterSimulator(
        platform("srvr1"),
        make_workload("websearch"),
        servers=3,
        clients_per_server=5,
        seed=11,
        warmup_requests=100,
        measure_requests=600,
        faults=STRESS_FAULT_PROFILE,
        fault_seed=7,
        retry=RETRY_POLICY,
        enclosure_size=3,
        tracer=tracer,
        metrics=metrics,
    ).run()


class TestClusterDeterminism:
    def test_traced_run_matches_untraced_run_exactly(self):
        untraced = _cluster_run()
        traced = _cluster_run(tracer=Tracer(sample_rate=1.0, seed=17),
                              metrics=MetricsRegistry())
        assert traced == untraced

    def test_partial_sampling_also_leaves_results_untouched(self):
        untraced = _cluster_run()
        traced = _cluster_run(tracer=Tracer(sample_rate=0.1, seed=17))
        assert traced == untraced

    def test_same_seed_gives_byte_identical_span_logs(self):
        logs = []
        for _ in range(2):
            tracer = Tracer(sample_rate=1.0, seed=17)
            _cluster_run(tracer=tracer)
            logs.append(spans_jsonl([("run", tracer.traces)]))
        assert logs[0] == logs[1]
        assert logs[0]  # non-empty: the run actually traced something

    def test_every_completed_trace_decomposes_exactly(self):
        tracer = Tracer(sample_rate=1.0, seed=17)
        _cluster_run(tracer=tracer)
        completed = tracer.completed_traces()
        assert len(completed) > 300
        for trace in completed:
            total = sum(exclusive_times(trace).values())
            assert total == pytest.approx(
                trace.duration_ms, rel=1e-9, abs=1e-6
            ), f"trace {trace.trace_id} ({trace.status})"

    def test_gave_up_requests_still_account_their_wait(self):
        # Requests that exhaust every retry must charge their elapsed
        # time somewhere (the gave-up wait lands on ``retry``), not
        # leak it into an untyped remainder.  A brutally short timeout
        # with hedging forces plenty of give-ups, including the tricky
        # case where every timed-out attempt overlapped a live hedge.
        from repro.cluster.balancer import RetryPolicy

        tracer = Tracer(sample_rate=1.0, seed=17)
        result = ClusterSimulator(
            platform("srvr1"),
            make_workload("websearch"),
            servers=3,
            clients_per_server=5,
            seed=11,
            warmup_requests=100,
            measure_requests=600,
            retry=RetryPolicy(
                timeout_ms=30.0, max_retries=1, hedge_after_ms=15.0
            ),
            tracer=tracer,
        ).run()
        assert result.fault_report.gave_up > 0
        gave_up = [
            t for t in tracer.completed_traces() if t.status == "gave_up"
        ]
        assert gave_up
        for trace in gave_up:
            times = exclusive_times(trace)
            assert sum(times.values()) == pytest.approx(trace.duration_ms)
            assert times.get("retry", 0.0) > 0.0


class TestServerSimulatorDeterminism:
    def _run(self, tracer=None):
        return ServerSimulator(
            platform("srvr1"),
            make_workload("websearch"),
            config=SimConfig(warmup_requests=50, measure_requests=400),
            tracer=tracer,
        ).run()

    def test_traced_run_matches_untraced_run(self):
        assert self._run(Tracer(sample_rate=1.0, seed=3)) == self._run()

    def test_sampling_rate_does_not_change_results(self):
        full = self._run(Tracer(sample_rate=1.0, seed=3))
        sparse_tracer = Tracer(sample_rate=0.2, seed=3)
        sparse = self._run(sparse_tracer)
        assert sparse == full
        assert 0 < len(sparse_tracer.traces) < sparse_tracer.requests_seen
