"""Tests of the overload-protection mechanisms and their cluster wiring."""

import random

import pytest

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.cluster.overload import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionVerdict,
    BreakerPolicy,
    BreakerState,
    BrownoutPolicy,
    CircuitBreaker,
    OverloadPolicy,
    RetryBudget,
    RetryBudgetPolicy,
    SurgeSchedule,
    TokenBucket,
)
from repro.platforms.catalog import platform
from repro.workloads.suite import make_workload


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # 10 tokens/s = one per 100 ms.
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(150.0)

    def test_time_must_be_monotonic(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1)
        bucket.try_acquire(50.0)
        with pytest.raises(ValueError):
            bucket.try_acquire(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestAdmissionController:
    def test_admits_when_idle(self):
        ctrl = AdmissionController(
            AdmissionPolicy(), slo_ms=500.0, rng=random.Random(1)
        )
        assert ctrl.admit(0.0) is AdmissionVerdict.ADMIT
        assert ctrl.shed_probability() == 0.0

    def test_sheds_once_delay_crosses_threshold(self):
        ctrl = AdmissionController(
            AdmissionPolicy(slo_fraction=0.5, ewma_alpha=1.0),
            slo_ms=500.0,
            rng=random.Random(1),
        )
        ctrl.observe_delay(200.0)  # below 250 ms threshold
        assert ctrl.shed_probability() == 0.0
        ctrl.observe_delay(500.0)  # 2x threshold -> full ramp
        assert ctrl.shed_probability() == pytest.approx(0.98)
        verdicts = [ctrl.admit(float(i)) for i in range(200)]
        shed = sum(1 for v in verdicts if v is AdmissionVerdict.SHED)
        assert shed > 150

    def test_rate_limit_precedes_shedding(self):
        ctrl = AdmissionController(
            AdmissionPolicy(rate_limit_rps=1.0, burst=1.0),
            slo_ms=500.0,
            rng=random.Random(1),
        )
        assert ctrl.admit(0.0) is AdmissionVerdict.ADMIT
        assert ctrl.admit(1.0) is AdmissionVerdict.RATE_LIMITED

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(rate_limit_rps=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdmissionController(AdmissionPolicy(), slo_ms=0.0, rng=random.Random(1))


class TestRetryBudget:
    def test_budget_caps_amplification(self):
        budget = RetryBudget(RetryBudgetPolicy(token_ratio=0.25, burst=2.0))
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        # Four first attempts earn one retry token back (0.25 each).
        for _ in range(4):
            budget.note_request()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_deposits_cap_at_burst(self):
        budget = RetryBudget(RetryBudgetPolicy(token_ratio=1.0, burst=3.0))
        for _ in range(10):
            budget.note_request()
        assert budget.tokens == 3.0


class TestCircuitBreaker:
    def _trip(self, breaker, now=0.0):
        for _ in range(breaker.policy.min_samples):
            breaker.record_failure(now)

    def test_trips_after_failure_window(self):
        breaker = CircuitBreaker(BreakerPolicy(min_samples=10, window=10))
        assert breaker.allow(0.0)
        self._trip(breaker)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(10.0)
        assert breaker.opens == 1

    def test_half_open_probe_closes_on_success(self):
        policy = BreakerPolicy(min_samples=10, window=10, open_ms=100.0,
                               half_open_probes=1)
        breaker = CircuitBreaker(policy)
        self._trip(breaker)
        assert breaker.allow(150.0)  # -> HALF_OPEN, one probe slot
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.note_dispatch(150.0)  # it is a probe
        assert not breaker.allow(151.0)  # probe slots exhausted
        breaker.record_success(160.0, probe=True)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(161.0)

    def test_half_open_probe_failure_reopens(self):
        policy = BreakerPolicy(min_samples=10, window=10, open_ms=100.0)
        breaker = CircuitBreaker(policy)
        self._trip(breaker)
        assert breaker.allow(150.0)
        breaker.note_dispatch(150.0)
        breaker.record_failure(160.0, probe=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow(200.0)

    def test_transition_callback_sees_every_state(self):
        seen = []
        policy = BreakerPolicy(min_samples=10, window=10, open_ms=100.0)
        breaker = CircuitBreaker(
            policy, on_transition=lambda now, s: seen.append(s)
        )
        self._trip(breaker)
        breaker.allow(150.0)
        breaker.note_dispatch(150.0)
        breaker.record_success(160.0, probe=True)
        assert seen == [
            BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(min_samples=30, window=20)


class TestPolicies:
    def test_unprotected_disables_every_layer(self):
        policy = OverloadPolicy.unprotected()
        assert policy.queue_cap is None
        assert not policy.deadline_shedding
        assert policy.admission is None
        assert policy.retry_budget is None
        assert policy.breaker is None
        assert policy.brownout is None

    def test_defaults_enable_every_layer(self):
        policy = OverloadPolicy()
        assert policy.queue_cap is not None
        assert policy.deadline_shedding
        assert None not in (
            policy.admission, policy.retry_budget, policy.breaker,
            policy.brownout,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPolicy(queue_cap=0)
        with pytest.raises(ValueError):
            BrownoutPolicy(demand_factor=0.0)
        with pytest.raises(ValueError):
            SurgeSchedule(base_rate_rps=0.0)
        with pytest.raises(ValueError):
            SurgeSchedule(base_rate_rps=1.0, surge_start_ms=10.0, surge_end_ms=5.0)

    def test_surge_schedule_rate(self):
        schedule = SurgeSchedule(
            base_rate_rps=10.0, surge_multiplier=4.0,
            surge_start_ms=100.0, surge_end_ms=200.0,
        )
        assert schedule.rate_rps(0.0) == 10.0
        assert schedule.rate_rps(100.0) == 40.0
        assert schedule.rate_rps(199.9) == 40.0
        assert schedule.rate_rps(200.0) == 10.0


class TestRetryJitter:
    def test_jitter_draws_below_deterministic_ceiling(self):
        policy = RetryPolicy(jitter=True, backoff_base_ms=10.0, backoff_factor=2.0)
        rng = random.Random(5)
        ceiling = 10.0 * 2.0**2
        draws = [policy.backoff_ms(2, rng) for _ in range(100)]
        assert all(0.0 <= d <= ceiling for d in draws)
        assert len(set(draws)) > 1  # actually random

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=True)
        a = [policy.backoff_ms(1, random.Random(9)) for _ in range(3)]
        b = [policy.backoff_ms(1, random.Random(9)) for _ in range(3)]
        assert a == b

    def test_no_rng_falls_back_to_deterministic(self):
        policy = RetryPolicy(jitter=True, backoff_base_ms=10.0)
        assert policy.backoff_ms(0) == 10.0
        assert RetryPolicy().backoff_ms(1) == 20.0


def _surge_cluster(overload, retry, servers=2, seed=3, base_rate=None):
    plat = platform("srvr1")
    workload = make_workload("websearch")
    base = base_rate if base_rate is not None else 100.0
    schedule = SurgeSchedule(
        base_rate_rps=base, surge_multiplier=5.0,
        surge_start_ms=3000.0, surge_end_ms=6000.0,
    )
    return ClusterSimulator(
        plat, workload, servers=servers, clients_per_server=1, seed=seed,
        retry=retry, overload=overload, arrivals=schedule,
        warmup_ms=1000.0, measure_ms=11_000.0,
    )


class TestClusterOverloadWiring:
    def test_open_loop_invariant_goodput_throughput_offered(self):
        result = _surge_cluster(OverloadPolicy(), RetryPolicy(jitter=True)).run()
        assert result.goodput_rps <= result.throughput_rps + 1e-9
        assert result.throughput_rps <= result.offered_rps + 1e-9
        assert result.offered_rps > 0

    def test_naive_surge_collapses_protected_recovers(self):
        naive = _surge_cluster(OverloadPolicy.unprotected(), RetryPolicy()).run()
        protected = _surge_cluster(OverloadPolicy(), RetryPolicy(jitter=True)).run()
        n, p = naive.overload_report, protected.overload_report
        pre_n = n.goodput.window_mean_rate_per_s(1000.0, 3000.0)
        post_n = n.goodput.window_mean_rate_per_s(8000.0, 12_000.0)
        pre_p = p.goodput.window_mean_rate_per_s(1000.0, 3000.0)
        post_p = p.goodput.window_mean_rate_per_s(8000.0, 12_000.0)
        assert post_n < 0.7 * pre_n  # metastable: stays collapsed
        assert post_p > 0.9 * pre_p  # protected: recovers
        assert protected.goodput_rps > 2.0 * naive.goodput_rps

    def test_protection_counters_fire_under_surge(self):
        result = _surge_cluster(OverloadPolicy(), RetryPolicy(jitter=True)).run()
        report = result.overload_report
        assert report.total_shed > 0
        assert report.brownout_requests > 0
        assert result.fault_report is not None
        assert result.fault_report.timeouts < 100

    def test_unprotected_report_counts_nothing(self):
        result = _surge_cluster(
            OverloadPolicy.unprotected(), RetryPolicy()
        ).run()
        report = result.overload_report
        assert report.total_shed == 0
        assert report.brownout_requests == 0
        assert report.breaker_opens == 0
        # ...but the telemetry is still there.
        assert report.offered.series()
        assert report.completed.series()

    def test_same_seed_same_result(self):
        a = _surge_cluster(OverloadPolicy(), RetryPolicy(jitter=True)).run()
        b = _surge_cluster(OverloadPolicy(), RetryPolicy(jitter=True)).run()
        assert a.goodput_rps == b.goodput_rps
        assert a.throughput_rps == b.throughput_rps
        assert a.overload_report.total_shed == b.overload_report.total_shed
        assert (
            a.overload_report.goodput.series()
            == b.overload_report.goodput.series()
        )

    def test_closed_loop_queue_cap_rejects(self):
        # 1 server, tiny queue cap, many clients, no retries: overflow
        # arrivals become errors and are counted as rejections.
        plat = platform("emb2")
        workload = make_workload("websearch")
        result = ClusterSimulator(
            plat, workload, servers=1, clients_per_server=40, seed=2,
            warmup_requests=100, measure_requests=600,
            retry=RetryPolicy(max_retries=0),
            overload=OverloadPolicy(
                queue_cap=4, admission=None, breaker=None, brownout=None,
                retry_budget=None, deadline_shedding=False,
            ),
        ).run()
        report = result.overload_report
        assert report.rejected_queue_full > 0
        assert result.goodput_rps <= result.throughput_rps + 1e-9

    def test_legacy_closed_loop_has_no_overload_report(self):
        plat = platform("emb2")
        workload = make_workload("websearch")
        result = ClusterSimulator(
            plat, workload, servers=1, clients_per_server=4, seed=2,
            warmup_requests=50, measure_requests=300,
        ).run()
        assert result.overload_report is None
        assert result.fault_report is None

    def test_open_loop_window_validation(self):
        plat = platform("emb2")
        workload = make_workload("websearch")
        with pytest.raises(ValueError):
            ClusterSimulator(
                plat, workload, servers=1, clients_per_server=1,
                arrivals=SurgeSchedule(base_rate_rps=10.0), measure_ms=0.0,
            )
