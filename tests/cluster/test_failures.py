"""Failure-injection tests for the cluster simulator.

The paper's design philosophy moves reliability into the software stack
("high-availability ... moved into the application stack"); the cluster
keeps serving when servers crash, at reduced capacity.
"""

import pytest

from repro.cluster.balancer import ClusterSimulator, Dispatch
from repro.platforms.catalog import platform
from repro.workloads.suite import make_workload


def _cluster(failures=None, servers=4, dispatch=Dispatch.LEAST_OUTSTANDING,
             seed=1):
    return ClusterSimulator(
        platform("desk"),
        make_workload("webmail"),
        servers=servers,
        clients_per_server=10,
        dispatch=dispatch,
        seed=seed,
        warmup_requests=200,
        measure_requests=2000,
        failures=failures,
    )


class TestFailureInjection:
    def test_cluster_survives_a_crash(self):
        result = _cluster(failures={2: 20_000.0}).run()
        assert result.throughput_rps > 0
        # The crashed server stops early: far fewer completions.
        survivors = [c for i, c in enumerate(result.server_completions) if i != 2]
        assert result.server_completions[2] < min(survivors) / 2

    def test_throughput_degrades_but_not_collapses(self):
        healthy = _cluster().run()
        degraded = _cluster(failures={1: 0.0}).run()
        # One of four servers down from the start: ~3/4 the capacity, and
        # never below half of it.
        assert degraded.throughput_rps < healthy.throughput_rps
        assert degraded.throughput_rps > 0.5 * healthy.throughput_rps

    def test_immediate_failure_gets_no_requests(self):
        result = _cluster(failures={0: 0.0}).run()
        assert result.server_completions[0] == 0

    def test_round_robin_also_avoids_dead_servers(self):
        result = _cluster(failures={3: 0.0}, dispatch=Dispatch.ROUND_ROBIN).run()
        assert result.server_completions[3] == 0
        assert result.throughput_rps > 0

    def test_multiple_failures(self):
        result = _cluster(failures={1: 0.0, 2: 30_000.0}, servers=4).run()
        assert result.server_completions[1] == 0
        assert result.throughput_rps > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            _cluster(failures={9: 0.0})
        with pytest.raises(ValueError):
            _cluster(failures={0: -5.0})
        with pytest.raises(ValueError):
            _cluster(failures={0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})


class TestRecovery:
    def test_recovered_server_rejoins_rotation(self):
        result = _cluster(failures={2: 0.0}).run()
        recovered = ClusterSimulator(
            platform("desk"),
            make_workload("webmail"),
            servers=4,
            clients_per_server=10,
            seed=1,
            warmup_requests=200,
            measure_requests=2500,
            failures={2: 0.0},
            recoveries={2: 60_000.0},
        ).run()
        # The recovered server serves a meaningful share after rejoining.
        assert recovered.server_completions[2] > 100
        assert result.server_completions[2] == 0

    def test_recovery_validation(self):
        with pytest.raises(ValueError, match="no failure"):
            ClusterSimulator(
                platform("desk"), make_workload("webmail"),
                servers=4, clients_per_server=4,
                recoveries={1: 100.0},
            )
        with pytest.raises(ValueError, match="follow its failure"):
            ClusterSimulator(
                platform("desk"), make_workload("webmail"),
                servers=4, clients_per_server=4,
                failures={1: 100.0}, recoveries={1: 50.0},
            )

    def test_full_outage_allowed_only_with_recovery(self):
        ClusterSimulator(
            platform("desk"), make_workload("webmail"),
            servers=2, clients_per_server=4,
            failures={0: 1000.0, 1: 1000.0},
            recoveries={0: 2000.0, 1: 2000.0},
        )
        with pytest.raises(ValueError, match="every server"):
            ClusterSimulator(
                platform("desk"), make_workload("webmail"),
                servers=2, clients_per_server=4,
                failures={0: 0.0, 1: 0.0},
            )
