"""Tests of the multi-server cluster simulation."""

import pytest

from repro.cluster.balancer import ClusterSimulator, Dispatch
from repro.platforms.catalog import platform
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads.suite import make_workload


def _cluster(servers=2, dispatch=Dispatch.LEAST_OUTSTANDING, clients=12,
             bench="webmail", system="desk", seed=1):
    return ClusterSimulator(
        platform(system),
        make_workload(bench),
        servers=servers,
        clients_per_server=clients,
        dispatch=dispatch,
        seed=seed,
        warmup_requests=200,
        measure_requests=1500,
    )


class TestClusterSimulator:
    def test_two_servers_roughly_double_one(self):
        single = ServerSimulator(
            platform("desk"),
            make_workload("webmail"),
            population=12,
            config=SimConfig(warmup_requests=200, measure_requests=1500, seed=1),
        ).run()
        cluster = _cluster(servers=2, clients=12).run()
        assert cluster.throughput_rps == pytest.approx(
            2 * single.throughput_rps, rel=0.15
        )

    def test_aggregation_assumption_holds_within_ten_percent(self):
        """The paper's cluster-performance-by-aggregation assumption."""
        results = {
            n: _cluster(servers=n, clients=10).run() for n in (2, 4)
        }
        per_server = [r.per_server_rps for r in results.values()]
        assert per_server[1] == pytest.approx(per_server[0], rel=0.10)

    def test_dispatch_policies_balance_load(self):
        for dispatch in (Dispatch.ROUND_ROBIN, Dispatch.LEAST_OUTSTANDING):
            result = _cluster(servers=4, dispatch=dispatch).run()
            assert result.imbalance < 1.15, dispatch

    def test_least_outstanding_has_no_worse_tail(self):
        rr = _cluster(servers=4, dispatch=Dispatch.ROUND_ROBIN, clients=16).run()
        lo = _cluster(servers=4, dispatch=Dispatch.LEAST_OUTSTANDING, clients=16).run()
        assert lo.qos_percentile_ms <= rr.qos_percentile_ms * 1.1

    def test_deterministic_by_seed(self):
        a = _cluster(seed=5).run()
        b = _cluster(seed=5).run()
        assert a.throughput_rps == b.throughput_rps

    def test_validation(self):
        with pytest.raises(ValueError):
            _cluster(servers=0)
        with pytest.raises(ValueError):
            _cluster(clients=0)
