"""Stochastic fault injection and graceful degradation in the cluster.

Covers the robustness stack end to end: seeded fault schedules,
health-checked dispatch with timeout/retry/hedging, correlated
memory-blade and enclosure failures, degraded modes (local-memory-only
paging, flash-cache bypass), and the determinism guarantees that make
fault runs reproducible.
"""

import pytest

from repro.cluster.balancer import ClusterResult, ClusterSimulator, RetryPolicy
from repro.faults.model import ComponentType, FaultProfile, FaultSpec
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.platforms.catalog import platform
from repro.workloads.suite import make_workload


def _seconds(mtbf_s, mttr_s):
    return FaultSpec(mtbf_hours=mtbf_s / 3600.0, mttr_hours=mttr_s / 3600.0)


#: Seconds-scale MTBFs so faults fire inside a short simulated window.
SERVER_FAULTS = FaultProfile(
    "test-servers", {ComponentType.SERVER: _seconds(15.0, 2.0)}
)
BLADE_FAULTS = FaultProfile(
    "test-blade", {ComponentType.MEMORY_BLADE: _seconds(10.0, 3.0)}
)
FLASH_FAULTS = FaultProfile(
    "test-flash", {ComponentType.FLASH_CACHE: _seconds(10.0, 3.0)}
)


def _cluster(**kwargs):
    defaults = dict(
        platform=platform("desk"),
        workload=make_workload("webmail"),
        servers=3,
        clients_per_server=6,
        seed=1,
        warmup_requests=100,
        measure_requests=800,
    )
    defaults.update(kwargs)
    return ClusterSimulator(**defaults)


class TestImbalanceGuard:
    def test_empty_completions_report_neutral_imbalance(self):
        result = ClusterResult(
            servers=0,
            throughput_rps=0.0,
            mean_response_ms=0.0,
            qos_percentile_ms=0.0,
            qos_met=True,
            per_server_rps=0.0,
            server_completions=[],
        )
        assert result.imbalance == 1.0

    def test_all_zero_completions_report_neutral_imbalance(self):
        result = ClusterResult(
            servers=2,
            throughput_rps=0.0,
            mean_response_ms=0.0,
            qos_percentile_ms=0.0,
            qos_met=True,
            per_server_rps=0.0,
            server_completions=[0, 0],
        )
        assert result.imbalance == 1.0


class TestScriptedScheduleValidation:
    def test_list_of_failure_times_is_rejected(self):
        with pytest.raises(TypeError, match="FaultInjector"):
            _cluster(failures={0: [1000.0, 2000.0]})

    def test_list_of_recovery_times_is_rejected(self):
        with pytest.raises(TypeError, match="at most one failure"):
            _cluster(failures={0: 1000.0}, recoveries={0: [2000.0, 3000.0]})

    def test_bool_is_not_a_time(self):
        with pytest.raises(TypeError):
            _cluster(failures={0: True})


class TestInjectedFaults:
    def test_faults_fire_and_cluster_survives(self):
        result = _cluster(faults=SERVER_FAULTS).run()
        report = result.fault_report
        assert report is not None
        assert sum(report.injected_failures.values()) > 0
        assert "server" in report.injected_failures
        assert result.throughput_rps > 0
        assert 0.0 < result.availability <= 1.0

    def test_crash_voids_in_flight_and_clients_retry(self):
        result = _cluster(
            faults=SERVER_FAULTS,
            retry=RetryPolicy(timeout_ms=300.0, max_retries=3,
                              backoff_base_ms=10.0),
        ).run()
        report = result.fault_report
        assert report.lost_in_flight > 0
        assert report.timeouts > 0
        assert report.retries > 0

    def test_hedging_duplicates_slow_requests(self):
        result = _cluster(
            faults=SERVER_FAULTS,
            retry=RetryPolicy(timeout_ms=500.0, hedge_after_ms=20.0),
        ).run()
        report = result.fault_report
        assert report.hedges > 0
        # A hedge that loses the race shows up as a wasted completion.
        assert report.wasted_completions > 0

    def test_legacy_scripted_semantics_keep_in_flight_work(self):
        result = _cluster(failures={1: 5_000.0}).run()
        report = result.fault_report
        assert report is not None
        assert report.lost_in_flight == 0
        assert report.timeouts == 0

    def test_full_outage_waits_instead_of_crashing(self):
        result = _cluster(
            servers=2,
            failures={0: 1_000.0, 1: 1_000.0},
            recoveries={0: 4_000.0, 1: 4_000.0},
        ).run()
        assert result.fault_report.all_down_waits > 0
        assert result.throughput_rps > 0


class TestCorrelatedBladeFailure:
    def _run(self, faults=None):
        remote = make_remote_memory_model(
            "websearch", local_fraction=0.25, trace_length=50_000
        )
        return _cluster(
            platform=platform("emb1"),
            workload=make_workload("websearch"),
            remote_memory=remote,
            faults=faults,
            fault_seed=7,
        ).run()

    def test_blade_down_degrades_every_server_at_once(self):
        healthy = self._run()
        faulted = self._run(faults=BLADE_FAULTS)
        report = faulted.fault_report
        assert report.injected_failures.get("memory-blade", 0) > 0
        assert report.blade_downtime_ms > 0
        # Local-memory-only mode served requests on every server.
        assert report.degraded_requests > 0
        # The correlated outage is visible in the tail, not a collapse.
        assert faulted.qos_percentile_ms > healthy.qos_percentile_ms
        assert faulted.throughput_rps > 0.5 * healthy.throughput_rps


class TestFlashCacheBypass:
    def test_cache_down_falls_back_to_raw_disk(self):
        config = disk_configuration("remote-laptop+flash")
        result = _cluster(
            platform=platform("emb1"),
            workload=make_workload("websearch"),
            disk_model_factory=lambda: config.make_disk_model("websearch"),
            faults=FLASH_FAULTS,
            fault_seed=3,
        ).run()
        report = result.fault_report
        assert report.injected_failures.get("flash-cache", 0) > 0
        assert report.cache_bypassed_requests > 0
        assert result.throughput_rps > 0


class TestDeterminism:
    """Satellite: same-seed runs are byte-identical, different seeds differ."""

    def test_scripted_runs_are_reproducible(self):
        results = [
            _cluster(failures={1: 3_000.0}, recoveries={1: 8_000.0}).run()
            for _ in range(2)
        ]
        assert repr(results[0]) == repr(results[1])

    def test_fault_injected_runs_are_reproducible(self):
        results = [
            _cluster(faults=SERVER_FAULTS, fault_seed=11).run() for _ in range(2)
        ]
        assert repr(results[0]) == repr(results[1])
        assert results[0].fault_report.injected_failures == (
            results[1].fault_report.injected_failures
        )

    def test_different_fault_seed_differs(self):
        a = _cluster(faults=SERVER_FAULTS, fault_seed=11).run()
        b = _cluster(faults=SERVER_FAULTS, fault_seed=12).run()
        assert repr(a) != repr(b)

    def test_different_workload_seed_differs(self):
        a = _cluster(faults=SERVER_FAULTS, seed=1, fault_seed=11).run()
        b = _cluster(faults=SERVER_FAULTS, seed=2, fault_seed=11).run()
        assert repr(a) != repr(b)
