"""Tests of the Amdahl/partitioning scale-out model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scaleout import ScaleOutModel, amdahl_speedup


class TestAmdahlSpeedup:
    def test_no_serial_work_is_linear(self):
        assert amdahl_speedup(8, 0.0) == pytest.approx(8.0)

    def test_all_serial_work_is_flat(self):
        assert amdahl_speedup(1000, 1.0) == pytest.approx(1.0)

    def test_classic_value(self):
        # 10% serial, 10-way: 1 / (0.1 + 0.9/10) = 5.26x
        assert amdahl_speedup(10, 0.1) == pytest.approx(5.263, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.1)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)

    @given(
        n=st.integers(min_value=1, max_value=100_000),
        serial=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_speedup_bounded(self, n, serial):
        s = amdahl_speedup(n, serial)
        assert 1.0 - 1e-9 <= s <= n + 1e-9
        if serial > 0:
            assert s <= 1.0 / serial + 1e-9


class TestScaleOutModel:
    def test_single_partition_is_lossless_without_serial_work(self):
        model = ScaleOutModel(serial_fraction=0.0)
        assert model.partition_efficiency(1) == pytest.approx(1.0)

    def test_efficiency_declines_with_partitions(self):
        model = ScaleOutModel()
        effs = [model.partition_efficiency(n) for n in (1, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_cluster_throughput_grows_then_saturates(self):
        model = ScaleOutModel(serial_fraction=0.01)
        xs = [model.cluster_throughput(n, 1.0) for n in (1, 10, 100)]
        assert xs[1] > xs[0]
        peak = model.max_useful_partitions()
        assert model.cluster_throughput(peak, 1.0) >= model.cluster_throughput(
            peak * 2, 1.0
        )

    def test_equivalence_ratio_exceeds_naive(self):
        """Partitioning overheads make small servers look worse than the
        naive capability ratio -- the paper's section 4 warning."""
        model = ScaleOutModel(
            serial_fraction=0.001, coordination_overhead=0.008,
            datastructure_inflation=0.007,
        )
        # Small servers at 1/6 the throughput of big ones.
        ratio = model.equivalence_ratio(1.0, 6.0, big_servers=100)
        assert ratio > 6.0

    def test_equivalence_ratio_can_be_unreachable(self):
        """With a hard serial fraction, weak servers can never match."""
        model = ScaleOutModel(serial_fraction=0.05)
        assert model.equivalence_ratio(1.0, 20.0, big_servers=50) == float("inf")

    def test_clean_sharding_keeps_ratio_near_naive(self):
        model = ScaleOutModel(
            serial_fraction=0.0, coordination_overhead=0.001,
            datastructure_inflation=0.001,
        )
        ratio = model.equivalence_ratio(1.0, 2.0, big_servers=100)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleOutModel(serial_fraction=-0.1)
        with pytest.raises(ValueError):
            ScaleOutModel(coordination_overhead=-1.0)
        model = ScaleOutModel()
        with pytest.raises(ValueError):
            model.partition_efficiency(0)
        with pytest.raises(ValueError):
            model.cluster_throughput(4, -1.0)
        with pytest.raises(ValueError):
            model.equivalence_ratio(0.0, 1.0, 10)
