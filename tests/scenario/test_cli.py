"""The ``repro-scenario`` CLI: validate, describe, run, exports."""

import json
import pathlib

import pytest

from repro.scenario import save_scenario
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.cli import main
from repro.scenario.spec import FaultsSpec, TracingSpec

REPO = pathlib.Path(__file__).parents[2]


def _tiny_scenario(tracing: bool = False):
    builder = (
        ScenarioBuilder("tiny")
        .tier("web", design="N1", servers=2, clients_per_server=2)
        .benchmark("websearch")
        .closed_loop(10, 40)
    )
    if tracing:
        builder.overlay(
            "traced",
            faults=FaultsSpec(profile="stress", fault_seed=7),
            tracing=TracingSpec(sample_rate=1.0, trace_seed=17),
        )
    return builder.build()


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "multirack-diurnal" in out
    assert "ext8-availability" in out


def test_validate_shipped_specs(capsys):
    pytest.importorskip("yaml")
    specs = [
        str(REPO / "examples/scenarios/ext8_availability.yaml"),
        str(REPO / "examples/scenarios/ext10_overload.yaml"),
        str(REPO / "examples/scenarios/ext11_trace_attribution.yaml"),
        str(REPO / "examples/multirack_diurnal.yaml"),
    ]
    assert main(["validate"] + specs) == 0
    out = capsys.readouterr().out
    assert out.count(": ok") == len(specs)


def test_validate_reports_paths(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "name": "bad",
        "topology": {"tiers": [{"name": "w", "platform": "n3"}]},
        "workload": {"benchmark": "websearch"},
        "traffic": {"closed_loop": {}},
    }))
    assert main(["validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out
    assert "topology.tiers[0].platform" in out


def test_describe_shows_engines(tmp_path, capsys):
    spec = tmp_path / "tiny.json"
    save_scenario(_tiny_scenario(), spec)
    assert main(["describe", str(spec)]) == 0
    out = capsys.readouterr().out
    assert "scalar (closed-loop mode)" in out
    assert "web/baseline" in out


def test_run_with_digest_and_outputs(tmp_path, capsys):
    spec = tmp_path / "tiny.json"
    save_scenario(_tiny_scenario(tracing=True), spec)
    out_dir = tmp_path / "out"
    assert main(["run", str(spec), "--output", str(out_dir)]) == 0
    first = capsys.readouterr().out

    payload = json.loads((out_dir / "result.json").read_text())
    assert payload["scenario"] == "tiny"
    assert payload["runs"][0]["engine_used"] == "scalar"
    assert payload["digest"]

    # Trace exports exist and the Chrome trace validates.
    assert (out_dir / "spans.jsonl").exists()
    from repro.obs.export import validate_chrome_trace

    document = json.loads((out_dir / "trace.json").read_text())
    assert validate_chrome_trace(document) == []

    # Re-running with --expect-digest on the reported digest passes...
    assert main(["run", str(spec),
                 "--expect-digest", payload["digest"]]) == 0
    assert "digest matches" in capsys.readouterr().out
    # ...and a wrong digest fails.
    assert main(["run", str(spec), "--expect-digest", "0" * 64]) == 1
    assert "digest mismatch" in capsys.readouterr().err
    assert "digest: " + payload["digest"] in first


def test_unknown_scenario_errors():
    with pytest.raises(SystemExit, match="neither a library scenario"):
        main(["run", "no-such-scenario"])
