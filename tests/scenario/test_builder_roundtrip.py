"""Builder -> dict/YAML -> load -> compile round trips.

Also pins the shipped example specs to the library builders: the YAML
files under ``examples/`` are the serialized forms of
``repro.scenario.library``; editing either side without the other fails
here.
"""

import json
import pathlib

import pytest

from repro.scenario import (
    LIBRARY,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.library import (
    ext8_availability,
    multirack_diurnal,
)

REPO = pathlib.Path(__file__).parents[2]

#: library name -> shipped spec file.
SHIPPED_SPECS = {
    "ext8-availability": "examples/scenarios/ext8_availability.yaml",
    "ext10-overload": "examples/scenarios/ext10_overload.yaml",
    "ext11-trace-attribution":
        "examples/scenarios/ext11_trace_attribution.yaml",
    "multirack-diurnal": "examples/multirack_diurnal.yaml",
}

yaml = pytest.importorskip("yaml")


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_dict_roundtrip(name):
    scenario = LIBRARY[name]()
    rebuilt = scenario_from_dict(scenario_to_dict(scenario))
    assert rebuilt == scenario


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_json_roundtrip(name):
    scenario = LIBRARY[name]()
    text = json.dumps(scenario_to_dict(scenario))
    assert scenario_from_dict(json.loads(text)) == scenario


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_yaml_file_roundtrip(tmp_path, name):
    scenario = LIBRARY[name]()
    path = tmp_path / "spec.yaml"
    save_scenario(scenario, path)
    assert load_scenario(path) == scenario


@pytest.mark.parametrize("name", sorted(SHIPPED_SPECS))
def test_shipped_spec_matches_library(name):
    loaded = load_scenario(REPO / SHIPPED_SPECS[name])
    assert loaded == LIBRARY[name](), (
        f"{SHIPPED_SPECS[name]} has drifted from "
        f"repro.scenario.library.{name!r}; regenerate it with "
        "save_scenario() or update the library builder"
    )


def test_encoding_omits_defaults():
    data = scenario_to_dict(ext8_availability())
    # Tier defaults (dispatch, cells, balancer_scope...) never appear.
    tier = data["topology"]["tiers"][0]
    assert "dispatch" not in tier
    assert "balancer_scope" not in tier
    assert "racks" not in data["topology"]


def test_loaded_scenario_is_frozen():
    scenario = multirack_diurnal()
    with pytest.raises(AttributeError):
        scenario.seed = 2


def test_compiled_plans_match_between_builder_and_yaml(tmp_path):
    scenario = multirack_diurnal()
    path = tmp_path / "flagship.yaml"
    save_scenario(scenario, path)
    from repro.scenario import compile_scenario

    direct = compile_scenario(scenario, quick=True)
    loaded = compile_scenario(load_scenario(path), quick=True)
    assert [p.run_id for p in direct.plans] == [
        p.run_id for p in loaded.plans]
    assert direct.plans == loaded.plans


def test_unknown_suffix_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown scenario format"):
        save_scenario(ext8_availability(), tmp_path / "spec.toml")


def test_from_dict_requires_name():
    from repro.scenario import ScenarioValidationError

    with pytest.raises(ScenarioValidationError) as excinfo:
        scenario_from_dict({})
    assert any(i.path == "name" for i in excinfo.value.issues)
