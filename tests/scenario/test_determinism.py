"""Scenario execution is bit-identical across worker counts."""

from repro.scenario import (
    OverloadSpec,
    RetrySpec,
    ScenarioBuilder,
    compile_scenario,
)


def _small_diurnal():
    """A 2-rack diurnal day with tiny windows (fast but multi-plan)."""
    return (
        ScenarioBuilder("determinism-diurnal")
        .racks(2)
        .tier("web", design="N1", servers=4)
        .benchmark("websearch")
        .open_loop(utilization=0.5, warmup_ms=200.0)
        .diurnal(sim_ms_per_hour=300.0, flash_crowd_hour=21)
        .region("us", weight=0.6)
        .region("eu", weight=0.4, peak_hour_offset=-5.0)
        .overlay("protected", retry=RetrySpec(jitter=True),
                 overload=OverloadSpec(queue_cap="auto"))
        .seed(11)
        .build()
    )


def test_serial_vs_jobs4_digest_identical():
    compiled = compile_scenario(_small_diurnal())
    serial = compiled.execute(jobs=1)
    parallel = compiled.execute(jobs=4)
    assert serial.digest() == parallel.digest()
    assert [r.run_id for r in serial.runs] == \
        [r.run_id for r in parallel.runs]
    assert [r.digest for r in serial.runs] == \
        [r.digest for r in parallel.runs]


def test_recompile_is_deterministic():
    a = compile_scenario(_small_diurnal())
    b = compile_scenario(_small_diurnal())
    assert a.plans == b.plans


def test_rack_and_segment_seeds_are_distinct():
    compiled = compile_scenario(_small_diurnal())
    seeds = {(p.rack, p.segment): p.seed for p in compiled.plans}
    assert len(set(seeds.values())) == len(seeds)


def test_scale_reports_modeled_population():
    compiled = compile_scenario(_small_diurnal())
    scale = compiled.scale()
    assert scale["racks"] == 2.0
    assert scale["servers_total"] == 8.0
    assert scale["modeled_users"] > 0
    assert scale["modeled_requests_per_day"] > 0
