"""Tests for the declarative scenario engine."""
