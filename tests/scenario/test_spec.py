"""Schema validation: precise paths, full aggregation, clear messages."""

import pytest

from repro.scenario import (
    ClosedLoopSpec,
    DiurnalSpec,
    FaultsSpec,
    OpenLoopSpec,
    OverlaySpec,
    RedundancySpec,
    RegionSpec,
    RequestDagSpec,
    Scenario,
    ScenarioBuilder,
    ScenarioValidationError,
    StepSpec,
    SurgeSpec,
    TierSpec,
    TopologySpec,
    TracingSpec,
    TrafficSpec,
    WorkloadSpec,
    scenario_from_dict,
)


def _issues(scenario: Scenario) -> dict:
    """path -> message for every validation issue."""
    return {issue.path: issue.message for issue in scenario.validate()}


def _valid_scenario(**overrides) -> Scenario:
    base = dict(
        name="ok",
        topology=TopologySpec(tiers=(TierSpec(name="web", design="N1"),)),
        workload=WorkloadSpec(benchmark="websearch"),
        traffic=TrafficSpec(closed_loop=ClosedLoopSpec()),
    )
    base.update(overrides)
    return Scenario(**base)


class TestPathPrecision:
    def test_unknown_platform_names_the_tier_index(self):
        scenario = _valid_scenario(
            topology=TopologySpec(tiers=(
                TierSpec(name="a", design="N1"),
                TierSpec(name="b", design="N2"),
                TierSpec(name="c", platform="n3"),
            )),
        )
        issues = _issues(scenario)
        assert "topology.tiers[2].platform" in issues
        assert "unknown 'n3'" in issues["topology.tiers[2].platform"]

    def test_dag_cycle_and_unknown_dependency(self):
        dag = RequestDagSpec(
            name="d",
            steps=(
                StepSpec(name="a", cpu_ms_ref=1.0, after=("b",)),
                StepSpec(name="b", cpu_ms_ref=1.0, after=("a",)),
                StepSpec(name="c", cpu_ms_ref=1.0, after=("ghost",)),
            ),
        )
        scenario = _valid_scenario(workload=WorkloadSpec(dag=dag))
        issues = _issues(scenario)
        assert any("workload.dag.steps[2].after" in path for path in issues)
        assert any("cycle" in message for message in issues.values())

    def test_overlay_block_paths(self):
        scenario = _valid_scenario(overlays=(
            OverlaySpec(name="x", faults=FaultsSpec(profile="chaos")),
            OverlaySpec(name="y", tracing=TracingSpec(sample_rate=2.0)),
        ))
        issues = _issues(scenario)
        assert "overlays[0].faults.profile" in issues
        assert "overlays[1].tracing.sample_rate" in issues


class TestAggregation:
    def test_every_error_reported_at_once(self):
        scenario = Scenario(
            name="",
            topology=TopologySpec(tiers=(
                TierSpec(name="web", platform="n3", servers=-2),
            )),
            workload=WorkloadSpec(benchmark="nosuchbench"),
            traffic=TrafficSpec(open_loop=OpenLoopSpec(
                utilization=0.5,
                surge=SurgeSpec(start_ms=30_000.0, end_ms=40_000.0),
            )),
            overlays=(OverlaySpec(name="x", faults=FaultsSpec("chaos")),),
            engine="warp",
        )
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario.check()
        paths = {issue.path for issue in excinfo.value.issues}
        assert {
            "name",
            "topology.tiers[0].platform",
            "topology.tiers[0].servers",
            "workload.benchmark",
            "traffic.open_loop.surge.end_ms",
            "overlays[0].faults.profile",
            "engine",
        } <= paths
        rendered = str(excinfo.value)
        assert "scenario failed validation" in rendered
        assert "topology.tiers[0].platform" in rendered

    def test_decode_issues_do_not_mask_semantic_issues(self):
        with pytest.raises(ScenarioValidationError) as excinfo:
            scenario_from_dict({
                "name": "bad",
                "topology": {"tiers": [{"name": "web", "platform": "n3"}]},
                "workload": {"benchmark": "websearch"},
                "overlays": [{"name": "x", "bogus_key": 1}],
            })
        paths = {issue.path for issue in excinfo.value.issues}
        assert "overlays[0].bogus_key" in paths  # decode problem
        assert "topology.tiers[0].platform" in paths  # semantic problem


class TestCrossValidation:
    def test_workload_requires_exactly_one_source(self):
        assert "workload" in _issues(_valid_scenario(
            workload=WorkloadSpec()))
        both = WorkloadSpec(
            benchmark="websearch",
            dag=RequestDagSpec(name="d", steps=(
                StepSpec(name="s", cpu_ms_ref=1.0),)),
        )
        assert any("workload" in p for p in _issues(
            _valid_scenario(workload=both)))

    def test_redundancy_needs_a_remote_memory_tier(self):
        scenario = _valid_scenario(overlays=(
            OverlaySpec(name="x", redundancy=RedundancySpec()),))
        issues = _issues(scenario)
        assert any("redundancy" in path for path in issues)

    def test_regions_require_diurnal(self):
        scenario = _valid_scenario(traffic=TrafficSpec(
            open_loop=OpenLoopSpec(
                utilization=0.5,
                regions=(RegionSpec(name="us"),),
            )))
        assert any("regions" in path for path in _issues(scenario))

    def test_sharded_engine_needs_enclosure_tiers(self):
        scenario = _valid_scenario(engine="sharded")
        assert any("engine" in path for path in _issues(scenario))

    def test_flash_crowd_hour_bounds(self):
        scenario = _valid_scenario(traffic=TrafficSpec(
            open_loop=OpenLoopSpec(
                utilization=0.5,
                diurnal=DiurnalSpec(flash_crowd_hour=24),
            )))
        assert any("flash_crowd_hour" in path for path in _issues(scenario))

    def test_valid_scenario_has_no_issues(self):
        assert _issues(_valid_scenario()) == {}


class TestBuilderValidation:
    def test_build_raises_aggregated(self):
        builder = (
            ScenarioBuilder("bad")
            .tier("web", platform="n3")
            .benchmark("nosuchbench")
        )
        with pytest.raises(ScenarioValidationError) as excinfo:
            builder.build()
        assert len(excinfo.value.issues) >= 2

    def test_build_without_validation(self):
        scenario = (
            ScenarioBuilder("bad")
            .tier("web", platform="n3")
            .benchmark("nosuchbench")
            .build(validate=False)
        )
        assert scenario.topology.tiers[0].platform == "n3"

    def test_step_before_dag_raises(self):
        with pytest.raises(ValueError, match="request_dag"):
            ScenarioBuilder("x").step("lookup", cpu_ms_ref=1.0)
