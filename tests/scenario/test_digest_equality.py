"""Scenario-compiled runs are digest-identical to the hand-wired modules.

The compiler's contract is that a scenario is *only* a notation: for
EXT-8 (availability), EXT-10 (overload), and EXT-11 (trace
attribution) the compiled :class:`ClusterSimulator` configurations must
be bit-for-bit the ones the experiment modules construct, asserted by
``stream_digest()`` (and ``trace_digest`` for EXT-11) equality on
shrunk measurement windows.
"""

import pytest

from repro.cluster.balancer import ClusterSimulator, RetryPolicy
from repro.cluster.capacity import (
    open_loop_rate_rps,
    per_server_capacity_rps,
    surge_queue_cap,
)
from repro.cluster.overload import OverloadPolicy, SurgeSchedule
from repro.experiments import availability
from repro.experiments.availability import _TRACE_LENGTH, _setups
from repro.experiments.trace_attribution import (
    TraceRunConfig,
    run_traced_design,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.obs.export import trace_digest
from repro.scenario import (
    FaultsSpec,
    OverloadSpec,
    RetrySpec,
    ScenarioBuilder,
    TracingSpec,
    compile_scenario,
)
from repro.scenario.library import _EXT8_RETRY, _section36_tiers
from repro.workloads.suite import make_workload

WARMUP, MEASURE = 20, 100


def _shrunk_ext8():
    builder = ScenarioBuilder("ext8-shrunk")
    _section36_tiers(builder, servers=6, clients_per_server=6)
    return (
        builder
        .benchmark("websearch")
        .closed_loop(WARMUP, MEASURE)
        .seed(1)
        .overlay("healthy")
        .overlay("faulted",
                 faults=FaultsSpec(profile="stress", fault_seed=7),
                 retry=_EXT8_RETRY)
        .build()
    )


class TestExt8Availability:
    @pytest.fixture(scope="class")
    def compiled_digests(self):
        result = compile_scenario(_shrunk_ext8()).execute()
        return {record.run_id: record.digest for record in result.runs}

    @pytest.mark.parametrize("design", ["srvr1", "N1", "N2"])
    def test_healthy_and_faulted_match_hand_wired(
            self, compiled_digests, design):
        setup = {s.name: s for s in _setups()}[design]
        healthy, faulted = availability._simulate(
            setup, 6, 6, WARMUP, MEASURE, 1, 7,
            availability.STRESS_FAULT_PROFILE,
        )
        assert compiled_digests[f"{design}/healthy"] == \
            healthy.stream_digest()
        assert compiled_digests[f"{design}/faulted"] == \
            faulted.stream_digest()


class TestExt10Overload:
    WARMUP_MS, MEASURE_MS = 500.0, 4000.0
    SURGE_START_MS, SURGE_END_MS = 1000.0, 2000.0

    @pytest.fixture(scope="class")
    def compiled(self):
        builder = ScenarioBuilder("ext10-shrunk")
        _section36_tiers(builder, servers=4, clients_per_server=1)
        scenario = (
            builder
            .benchmark("websearch")
            .open_loop(utilization=0.6, warmup_ms=self.WARMUP_MS,
                       measure_ms=self.MEASURE_MS)
            .surge(multiplier=5.0, start_ms=self.SURGE_START_MS,
                   end_ms=self.SURGE_END_MS)
            .seed(3)
            .overlay("naive", retry=RetrySpec(),
                     overload=OverloadSpec(protected=False, queue_cap=None))
            .overlay("protected", retry=RetrySpec(jitter=True),
                     overload=OverloadSpec(queue_cap="auto"))
            .build()
        )
        result = compile_scenario(scenario).execute()
        return {record.run_id: record for record in result.runs}

    @pytest.mark.parametrize("design", ["srvr1", "N1", "N2"])
    def test_both_arms_match_hand_wired(self, compiled, design):
        # Mirror overload.run()'s per-design construction (which itself
        # now sizes via repro.cluster.capacity) on the shrunk windows.
        setup = {s.name: s for s in _setups()}[design]
        workload = make_workload("websearch")
        plat = setup.design.platform
        remote = factory = disk_model = None
        if setup.uses_remote_memory:
            remote = make_remote_memory_model(
                "websearch", local_fraction=0.25,
                trace_length=_TRACE_LENGTH)
        if setup.uses_flash:
            config = disk_configuration("remote-laptop+flash")
            factory = lambda: config.make_disk_model("websearch")  # noqa: E731
            disk_model = config.make_disk_model("websearch")
        capacity = per_server_capacity_rps(
            plat, workload, remote_memory=remote, disk_model=disk_model,
            servers=4)
        base_rate = open_loop_rate_rps(0.6, capacity, 4)
        common = dict(
            platform=plat, workload=workload, servers=4,
            clients_per_server=1, seed=3, disk_model_factory=factory,
            remote_memory=remote,
            arrivals=SurgeSchedule(
                base_rate_rps=base_rate, surge_multiplier=5.0,
                surge_start_ms=self.SURGE_START_MS,
                surge_end_ms=self.SURGE_END_MS),
            warmup_ms=self.WARMUP_MS, measure_ms=self.MEASURE_MS,
        )
        protected_retry = RetryPolicy(jitter=True)
        naive = ClusterSimulator(
            retry=RetryPolicy(), overload=OverloadPolicy.unprotected(),
            **common).run()
        protected = ClusterSimulator(
            retry=protected_retry,
            overload=OverloadPolicy(queue_cap=surge_queue_cap(
                capacity, protected_retry.timeout_ms)),
            **common).run()
        assert compiled[f"{design}/naive"].digest == naive.stream_digest()
        assert compiled[f"{design}/protected"].digest == \
            protected.stream_digest()

    def test_cohort_engages_where_eligible(self, compiled):
        # srvr1/N1 open-loop arms vectorize; N2's remote-memory blade
        # falls back to scalar with the reason surfaced.
        assert compiled["srvr1/naive"].engine_used == "cohort"
        assert compiled["N1/protected"].engine_used == "cohort"
        assert compiled["N2/naive"].engine_used == "scalar"
        assert compiled["N2/naive"].fallback_reason


class TestExt11TraceAttribution:
    @pytest.fixture(scope="class")
    def compiled(self):
        builder = ScenarioBuilder("ext11-shrunk")
        _section36_tiers(builder, servers=6, clients_per_server=6)
        scenario = (
            builder
            .benchmark("websearch")
            .closed_loop(WARMUP, MEASURE)
            .seed(1)
            .overlay("traced-faulted",
                     faults=FaultsSpec(profile="stress", fault_seed=7),
                     retry=_EXT8_RETRY,
                     tracing=TracingSpec(sample_rate=1.0, trace_seed=17))
            .build()
        )
        result = compile_scenario(scenario).execute()
        return {record.tier: record for record in result.runs}

    @pytest.mark.parametrize("design", ["srvr1", "N1", "N2"])
    def test_results_and_traces_match_hand_wired(self, compiled, design):
        payload = run_traced_design(TraceRunConfig(
            design=design, warmup=WARMUP, measure=MEASURE))
        record = compiled[design]
        assert record.digest == payload["result"].stream_digest()
        assert trace_digest([(design, record.tracer.traces)]) == \
            trace_digest([(design, payload["tracer"].traces)])
