"""Fail-slow drift processes and the peer-comparison detector.

Drift multipliers are pure functions of simulated time; the detector is
a pure function of (observed latencies, simulated time).  Both claims
are what makes detection bit-deterministic and RNG-free, so the tests
here lean on exact equality, not tolerances.
"""

import pytest

from repro.cluster import ClusterSimulator
from repro.cluster.balancer import RetryPolicy
from repro.faults.failslow import (
    AdaptiveTimeoutPolicy,
    DetectionPolicy,
    DriftTable,
    FailSlowInjection,
    FailSlowPlan,
    LinearDrift,
    PeerComparisonDetector,
    SawtoothDrift,
    ServerHealth,
    SlowResource,
    StepDrift,
    StutterDrift,
)
from repro.platforms import platform
from repro.workloads import make_workload


class TestDriftProcesses:
    def test_linear_ramps_and_never_heals(self):
        drift = LinearDrift(peak=5.0, onset_ms=1000.0, ramp_ms=2000.0)
        assert drift.multiplier(0.0) == 1.0
        assert drift.multiplier(1000.0) == 1.0
        assert drift.multiplier(2000.0) == pytest.approx(3.0)
        assert drift.multiplier(3000.0) == pytest.approx(5.0)
        assert drift.multiplier(1e9) == pytest.approx(5.0)

    def test_step_is_flat_then_persistent(self):
        drift = StepDrift(10.0, at_ms=500.0)
        assert drift.multiplier(499.9) == 1.0
        assert drift.multiplier(500.0) == 10.0
        assert drift.multiplier(1e9) == 10.0

    def test_stutter_fires_only_in_bursts_after_onset(self):
        drift = StutterDrift(
            factor=4.0, period_ms=1000.0, burst_ms=200.0,
            probability=1.0, seed=9, onset_ms=2000.0,
        )
        assert drift.multiplier(1999.0) == 1.0
        # probability 1.0: every window's burst stalls...
        for window in range(5):
            start = 2000.0 + window * 1000.0
            assert drift.multiplier(start + 100.0) == 4.0
            # ...and the rest of every window is clean.
            assert drift.multiplier(start + 200.0) == 1.0
            assert drift.multiplier(start + 999.0) == 1.0

    def test_stutter_is_deterministic_across_instances(self):
        make = lambda: StutterDrift(  # noqa: E731
            factor=3.0, period_ms=700.0, burst_ms=300.0,
            probability=0.5, seed=42,
        )
        times = [13.0 * step for step in range(400)]
        assert [make().multiplier(t) for t in times] == [
            make().multiplier(t) for t in times
        ]
        # and the 50% gate actually passes some windows and stops others
        values = {make().multiplier(t) for t in times}
        assert values == {1.0, 3.0}

    def test_sawtooth_climbs_then_snaps_back(self):
        drift = SawtoothDrift(peak=3.0, period_ms=1000.0)
        assert drift.multiplier(0.0) == 1.0
        assert drift.multiplier(500.0) == pytest.approx(2.0)
        assert drift.multiplier(999.0) == pytest.approx(2.998)
        assert drift.multiplier(1000.0) == 1.0  # cooled

    def test_multipliers_below_one_are_rejected(self):
        with pytest.raises(ValueError):
            LinearDrift(peak=0.5)
        with pytest.raises(ValueError):
            StepDrift(0.9)
        with pytest.raises(ValueError):
            StutterDrift(factor=2.0, burst_ms=0.0)
        with pytest.raises(ValueError):
            SawtoothDrift(peak=2.0, period_ms=0.0)

    def test_injection_requires_a_drift_shaped_object(self):
        with pytest.raises(TypeError):
            FailSlowInjection(0, SlowResource.CPU, object())
        with pytest.raises(ValueError):
            FailSlowInjection(-1, SlowResource.CPU, StepDrift(2.0))


class TestDriftTable:
    def test_same_lane_drifts_compose_multiplicatively(self):
        plan = FailSlowPlan(
            injections=(
                FailSlowInjection(1, SlowResource.CPU, StepDrift(2.0)),
                FailSlowInjection(1, SlowResource.CPU, StepDrift(3.0)),
            )
        )
        table = plan.table(servers=3)
        assert DriftTable.scale(table.cpu[1], 10.0) == pytest.approx(6.0)
        assert table.cpu[0] is None and table.cpu[2] is None
        assert DriftTable.scale(None, 10.0) == 1.0

    def test_out_of_range_server_is_rejected_at_compile(self):
        plan = FailSlowPlan.single_slow_node(server=5)
        with pytest.raises(ValueError, match="out of range"):
            plan.table(servers=3)

    def test_single_slow_node_helper(self):
        plan = FailSlowPlan.single_slow_node(server=2, factor=8.0)
        assert plan.drifting_servers == [2]
        (injection,) = plan.injections
        assert injection.resource is SlowResource.CPU
        assert injection.drift.multiplier(0.0) == 8.0


def _feed(detector, latencies_by_server, repeats):
    for _ in range(repeats):
        for server, latency in enumerate(latencies_by_server):
            detector.histograms[server].record(latency)


class TestPeerComparisonDetector:
    POLICY = DetectionPolicy(adaptive_timeout=AdaptiveTimeoutPolicy())

    def test_outlier_is_ejected_and_symmetric_fleet_is_not(self):
        detector = PeerComparisonDetector(self.POLICY, servers=4)
        now = 0.0
        for _ in range(self.POLICY.suspect_evals + 1):
            now += self.POLICY.eval_interval_ms
            _feed(detector, [10.0, 10.0, 10.0, 100.0],
                  self.POLICY.min_window_samples)
            detector.evaluate(now)
        assert detector.health(3) is ServerHealth.QUARANTINED
        assert detector.report.ejections == 1
        assert not detector.routable(3)
        assert all(detector.routable(i) for i in range(3))

        healthy = PeerComparisonDetector(self.POLICY, servers=4)
        now = 0.0
        for _ in range(6):
            now += self.POLICY.eval_interval_ms
            _feed(healthy, [10.0, 11.0, 10.0, 11.0],
                  self.POLICY.min_window_samples)
            assert healthy.evaluate(now) == []
        assert healthy.report.ejections == 0
        assert healthy.ejected_count == 0

    def test_adaptive_timeout_tracks_fleet_median_under_static_cap(self):
        detector = PeerComparisonDetector(self.POLICY, servers=3)
        assert detector.attempt_timeout_ms(1000.0) == 1000.0  # cold
        _feed(detector, [10.0, 10.0, 10.0], self.POLICY.min_window_samples)
        detector.evaluate(self.POLICY.eval_interval_ms)
        adaptive = detector.adaptive_timeout_ms
        assert adaptive is not None
        policy = self.POLICY.adaptive_timeout
        assert adaptive >= policy.floor_ms
        assert detector.attempt_timeout_ms(1000.0) == min(adaptive, 1000.0)
        assert detector.attempt_timeout_ms(1.0) == 1.0  # static stays a cap

    def test_ejection_capacity_keeps_a_brownout_in_rotation(self):
        # 5 servers, default max_ejected_fraction 0.34 -> capacity 1:
        # with two genuinely slow nodes only one may leave rotation.
        detector = PeerComparisonDetector(self.POLICY, servers=5)
        now = 0.0
        for _ in range(self.POLICY.suspect_evals + 2):
            now += self.POLICY.eval_interval_ms
            _feed(detector, [10.0, 10.0, 10.0, 100.0, 100.0],
                  self.POLICY.min_window_samples)
            detector.evaluate(now)
        assert detector.ejected_count == 1
        assert detector.report.ejections == 1

    def test_detection_consumes_no_rng(self):
        detector = PeerComparisonDetector(self.POLICY, servers=3)
        now = 0.0
        for _ in range(4):
            now += self.POLICY.eval_interval_ms
            _feed(detector, [10.0, 10.0, 80.0],
                  self.POLICY.min_window_samples)
            detector.evaluate(now)
        # Pure function of (latencies, time): a second detector fed the
        # same stream lands in the identical state.
        other = PeerComparisonDetector(self.POLICY, servers=3)
        now = 0.0
        for _ in range(4):
            now += self.POLICY.eval_interval_ms
            _feed(other, [10.0, 10.0, 80.0], self.POLICY.min_window_samples)
            other.evaluate(now)
        assert detector.report == other.report
        assert [detector.health(i) for i in range(3)] == [
            other.health(i) for i in range(3)
        ]


class TestDrainedServers:
    """Maintenance drains: hedges and probes must avoid draining nodes."""

    POLICY = DetectionPolicy(adaptive_timeout=AdaptiveTimeoutPolicy())

    def test_drained_server_is_not_routable_while_active(self):
        detector = PeerComparisonDetector(self.POLICY, servers=3)
        assert detector.routable(1)
        detector.set_drained(1, True)
        assert detector.health(1) is ServerHealth.ACTIVE  # not ejected
        assert not detector.routable(1)
        detector.set_drained(1, False)
        assert detector.routable(1)

    def test_set_drained_is_idempotent(self):
        detector = PeerComparisonDetector(self.POLICY, servers=3)
        detector.set_drained(2, True)
        detector.set_drained(2, True)
        assert detector.drained_count == 1
        assert detector.report.drain_marks == 1
        detector.set_drained(2, False)
        detector.set_drained(2, False)
        assert detector.drained_count == 0
        assert detector.report.drain_marks == 1

    def test_fleet_median_excludes_drained_servers(self):
        # Two servers, one slow: the median (and so the adaptive
        # timeout) straddles both.  Draining the slow one must pull the
        # median down to the healthy node's latency alone.
        detector = PeerComparisonDetector(self.POLICY, servers=2)
        now = self.POLICY.eval_interval_ms
        _feed(detector, [10.0, 1000.0], self.POLICY.min_window_samples)
        detector.evaluate(now)
        mixed = detector.adaptive_timeout_ms
        assert mixed is not None

        drained = PeerComparisonDetector(self.POLICY, servers=2)
        drained.set_drained(1, True)
        _feed(drained, [10.0, 1000.0], self.POLICY.min_window_samples)
        drained.evaluate(now)
        assert drained.adaptive_timeout_ms is not None
        assert drained.adaptive_timeout_ms < mixed

    def test_probes_skip_drained_probation_server(self):
        detector = PeerComparisonDetector(self.POLICY, servers=4)
        now = 0.0
        for _ in range(self.POLICY.suspect_evals + 1):
            now += self.POLICY.eval_interval_ms
            _feed(detector, [10.0, 10.0, 10.0, 100.0],
                  self.POLICY.min_window_samples)
            detector.evaluate(now)
        assert detector.health(3) is ServerHealth.QUARANTINED
        # Let the quarantine dwell expire so probation probing starts.
        now += self.POLICY.quarantine_ms + self.POLICY.eval_interval_ms
        _feed(detector, [10.0, 10.0, 10.0, 10.0],
              self.POLICY.min_window_samples)
        detector.evaluate(now)
        assert detector.health(3) is ServerHealth.PROBATION
        detector.set_drained(3, True)
        assert detector.take_probe() is None  # drained: no probe traffic
        detector.set_drained(3, False)
        assert detector.take_probe() == 3


def _cluster(detection=None, failslow=None, retry=None, seed=7, servers=3):
    return ClusterSimulator(
        platform("srvr1"),
        make_workload("websearch"),
        servers=servers,
        clients_per_server=4,
        seed=seed,
        warmup_requests=50,
        measure_requests=400,
        retry=retry,
        failslow=failslow,
        failslow_detection=detection,
    ).run()


class TestClusterDeterminism:
    DETECTION = DetectionPolicy(adaptive_timeout=AdaptiveTimeoutPolicy())

    def test_healthy_fleet_digest_identical_with_detection_on_or_off(self):
        off = _cluster()
        on = _cluster(detection=self.DETECTION)
        assert on.stream_digest() == off.stream_digest()
        assert on.failslow_report.ejections == 0

    def test_same_seed_same_digest_across_runs(self):
        first = _cluster(detection=self.DETECTION,
                         failslow=FailSlowPlan.single_slow_node())
        second = _cluster(detection=self.DETECTION,
                          failslow=FailSlowPlan.single_slow_node())
        assert first.stream_digest() == second.stream_digest()
        assert first.failslow_report == second.failslow_report

    # Pinned seeds, not hypothesis: the short-window p95-vs-median
    # score has a small healthy false-positive rate at this scale (a
    # 3-node fleet median IS one node's score, and p95 over an 8-sample
    # window is its max), so "never ejects for *any* seed" is
    # statistically false -- seed 355 falsifies it.  The guard stays
    # deterministic over seeds verified to represent healthy variance.
    @pytest.mark.parametrize("seed", [0, 7, 42, 123, 4096])
    def test_homogeneous_healthy_fleet_never_ejects(self, seed):
        result = _cluster(detection=self.DETECTION, seed=seed)
        report = result.failslow_report
        assert report.ejections == 0
        assert report.requarantines == 0
        assert all(
            state == ServerHealth.ACTIVE.value
            for state in report.final_health.values()
        )


class TestHedgeRedirect:
    def test_hedges_to_quarantined_servers_are_redirected(self):
        retry = RetryPolicy(
            timeout_ms=1000.0, max_retries=3, backoff_base_ms=20.0,
            hedge_after_ms=150.0,
        )
        result = _cluster(
            detection=DetectionPolicy(
                adaptive_timeout=AdaptiveTimeoutPolicy()
            ),
            failslow=FailSlowPlan.single_slow_node(),
            retry=retry,
        )
        assert result.failslow_report.ejections >= 1
        # The slow server's quarantine overlapped live hedging, so some
        # hedges drew it as the duplicate target and were re-aimed at a
        # routable peer instead of being dropped.
        assert result.fault_report.hedge_redirects > 0
