"""Recovery orchestration: throttle, rebuild streams, maintenance."""

import pytest

from repro.faults.recovery import (
    BladeFault,
    MaintenancePlan,
    RebuildPolicy,
    RebuildThrottle,
    RecoveryOrchestrator,
    RecoveryReport,
    RedundancyConfig,
)
from repro.faults.injector import FaultEvent, schedule_maintenance
from repro.memsim.redundancy import RedundancyPolicy
from repro.simulator.engine import Simulation
from repro.simulator.resources import Resource


class TestRebuildPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RebuildPolicy(chunk_pages=0)
        with pytest.raises(ValueError):
            RebuildPolicy(rate_pages_per_s=0)
        with pytest.raises(ValueError):
            RebuildPolicy(chunk_pages=64, burst_pages=32)
        with pytest.raises(ValueError):
            RebuildPolicy(backpressure_ms=0)
        with pytest.raises(ValueError):
            RebuildPolicy(ewma_alpha=0.0)


class TestRebuildThrottle:
    def test_token_bucket_caps_sustained_rate(self):
        throttle = RebuildThrottle(
            RebuildPolicy(chunk_pages=64, rate_pages_per_s=1000.0,
                          burst_pages=64)
        )
        assert throttle.try_acquire(0.0, 64)
        assert not throttle.try_acquire(0.0, 64)
        # 64 pages at 1000/s accrue in 64 ms.
        wait = throttle.refill_wait_ms(64)
        assert wait == pytest.approx(64.0, abs=1.0)
        assert throttle.try_acquire(wait, 64)

    def test_backpressure_follows_foreground_ewma(self):
        throttle = RebuildThrottle(RebuildPolicy(backpressure_ms=100.0))
        assert not throttle.backpressured  # unprimed: no signal yet
        throttle.observe_foreground(250.0)
        assert throttle.backpressured
        for _ in range(40):
            throttle.observe_foreground(10.0)
        assert not throttle.backpressured

    def test_no_backpressure_when_disabled(self):
        throttle = RebuildThrottle(RebuildPolicy(backpressure_ms=None))
        throttle.observe_foreground(10_000.0)
        assert not throttle.backpressured


class TestScriptedFaults:
    def test_blade_fault_validation(self):
        with pytest.raises(ValueError):
            BladeFault(-1, 10.0)
        with pytest.raises(ValueError):
            BladeFault(0, 100.0, 50.0)

    def test_config_rejects_out_of_range_faults(self):
        with pytest.raises(ValueError):
            RedundancyConfig(
                policy=RedundancyPolicy.replicated(2), blades=3,
                blade_faults=(BladeFault(3, 10.0),),
            )

    def test_config_rejects_too_few_blades(self):
        with pytest.raises(ValueError):
            RedundancyConfig(policy=RedundancyPolicy.parity(4), blades=4)

    def test_unprotected_config_builds_no_group(self):
        config = RedundancyConfig(policy=None, blades=1)
        assert config.nblades == 1
        assert config.build_group(["server-0"]) is None

    def test_protected_config_builds_populated_group(self):
        config = RedundancyConfig(
            policy=RedundancyPolicy.replicated(2), blades=3,
            pages_per_server=16,
        )
        group = config.build_group(["server-0", "server-1"])
        assert group is not None
        audit = group.audit()
        assert audit.written == 32
        assert audit.intact == 32


class TestMaintenancePlan:
    def test_rolling_windows_are_sequential(self):
        plan = MaintenancePlan.rolling(
            3, start_ms=100.0, duration_ms=50.0, gap_ms=10.0
        )
        assert [w.server for w in plan.windows] == [0, 1, 2]
        assert [w.start_ms for w in plan.windows] == [100.0, 160.0, 220.0]
        assert plan.windows[0].end_ms == 150.0

    def test_schedule_maintenance_consumes_zero_rng(self):
        sim = Simulation()
        drained, restored = [], []
        events = []
        plan = MaintenancePlan.rolling(2, start_ms=10.0, duration_ms=5.0)
        schedule_maintenance(
            sim, plan.windows, drained.append, restored.append,
            events=events,
        )
        sim.run()
        assert drained == [0, 1]
        assert restored == [0, 1]
        assert [(e.kind, e.component) for e in events] == [
            ("drain", "maintenance/server0"),
            ("restore", "maintenance/server0"),
            ("drain", "maintenance/server1"),
            ("restore", "maintenance/server1"),
        ]
        assert all(isinstance(e, FaultEvent) for e in events)


def _orchestrator(sim, link, rebuild=None, trace=False):
    config = RedundancyConfig(
        policy=RedundancyPolicy.replicated(2), blades=3,
        pages_per_server=32,
        rebuild=rebuild or RebuildPolicy(
            chunk_pages=16, rate_pages_per_s=10_000.0, burst_pages=16
        ),
    )
    group = config.build_group(["server-0", "server-1"])
    return RecoveryOrchestrator(
        sim, link, group, config.rebuild, page_latency_us=4.0,
        trace=trace, report=RecoveryReport(),
    )


class TestRecoveryOrchestrator:
    def test_failover_then_rebuild_restores_redundancy(self):
        sim = Simulation()
        link = Resource(sim, "blade", 1)
        recovery = _orchestrator(sim, link, trace=True)
        assert not recovery.active
        sim.schedule_at(100.0, lambda: recovery.blade_failed(0))
        sim.schedule_at(400.0, lambda: recovery.blade_repaired(0))
        sim.run()
        recovery.finalize(sim.now)
        report = recovery.report
        assert recovery.group.pages_needing_rebuild == 0
        assert recovery.group.degraded_pages() == 0
        assert not recovery.active
        assert report.blade_failures == 1
        assert report.blade_repairs == 1
        assert report.pages_rebuilt > 0
        assert report.rebuild_chunks >= 1
        # Exposure runs from failure until the rebuild finishes.
        assert report.exposure_ms > 300.0
        assert report.blade_downtime_ms[0] == pytest.approx(300.0)
        assert report.audit is not None and report.audit.conserved
        assert not report.data_loss
        # The stream was traced: a root span plus one span per chunk.
        assert len(report.rebuild_traces) == 1
        assert len(report.rebuild_traces[0].spans) == report.rebuild_chunks + 1

    def test_profile_degrades_during_outage_and_recovers(self):
        sim = Simulation()
        link = Resource(sim, "blade", 1)
        recovery = _orchestrator(sim, link)
        assert recovery.profile("server-0").healthy
        recovery.blade_failed(0)
        prof = recovery.profile("server-0")
        assert not prof.healthy
        assert prof.failover_fraction > 0.0
        assert prof.lost_fraction == 0.0  # single fault is tolerated
        recovery.blade_repaired(0)
        sim.run()
        assert recovery.profile("server-0").healthy

    def test_rate_throttle_slows_the_stream(self):
        fast_sim = Simulation()
        fast = _orchestrator(
            fast_sim, Resource(fast_sim, "blade", 1),
            rebuild=RebuildPolicy(
                chunk_pages=16, rate_pages_per_s=1_000_000.0,
                burst_pages=1024,
            ),
        )
        slow_sim = Simulation()
        slow = _orchestrator(
            slow_sim, Resource(slow_sim, "blade", 1),
            rebuild=RebuildPolicy(
                chunk_pages=16, rate_pages_per_s=2_000.0, burst_pages=16
            ),
        )
        for sim, recovery in ((fast_sim, fast), (slow_sim, slow)):
            sim.schedule_at(10.0, lambda r=recovery: r.blade_failed(0))
            sim.schedule_at(20.0, lambda r=recovery: r.blade_repaired(0))
            sim.run()
            recovery.finalize(sim.now)
        assert slow.report.throttle_denials > 0
        assert slow.report.rebuild_ms > fast.report.rebuild_ms
        assert slow.report.pages_rebuilt == fast.report.pages_rebuilt

    def test_backpressure_pauses_while_foreground_is_slow(self):
        sim = Simulation()
        link = Resource(sim, "blade", 1)
        recovery = _orchestrator(
            sim, link,
            rebuild=RebuildPolicy(
                chunk_pages=16, rate_pages_per_s=1_000_000.0,
                burst_pages=1024, backpressure_ms=50.0, pause_ms=5.0,
            ),
        )
        recovery.observe_foreground(500.0)  # tail already inflated
        sim.schedule_at(10.0, lambda: recovery.blade_failed(0))
        sim.schedule_at(20.0, lambda: recovery.blade_repaired(0))
        # Foreground recovers shortly after; rebuild resumes then.
        sim.schedule_at(
            30.0, lambda: [recovery.observe_foreground(1.0)
                           for _ in range(50)]
        )
        sim.run()
        recovery.finalize(sim.now)
        assert recovery.report.backpressure_pauses > 0
        assert recovery.group.pages_needing_rebuild == 0

    def test_unfinished_exposure_closed_by_finalize(self):
        sim = Simulation()
        link = Resource(sim, "blade", 1)
        recovery = _orchestrator(sim, link)
        sim.schedule_at(100.0, lambda: recovery.blade_failed(0))
        sim.schedule_at(500.0, lambda: None)  # advance the clock past it
        sim.run()
        recovery.finalize(sim.now)
        report = recovery.report
        assert recovery.active  # blade still down: stays active
        assert report.exposure_ms > 0.0
        assert report.blade_downtime_ms[0] > 0.0

    def test_impairment_callback_fires_on_data_loss(self):
        sim = Simulation()
        link = Resource(sim, "blade", 1)
        recovery = _orchestrator(sim, link)
        marks = []
        recovery.on_impairment = lambda server, flag: marks.append(
            (server, flag)
        )
        recovery.blade_failed(0)
        assert marks == []  # tolerated fault: nobody is impaired
        recovery.blade_failed(1)
        assert ("server-0", True) in marks
