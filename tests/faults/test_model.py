"""Tests of the MTBF/MTTR fault profiles."""

import pytest

from repro.faults.model import (
    ComponentType,
    DEFAULT_FAULT_PROFILE,
    DEPRECIATION_CYCLE_HOURS,
    FaultProfile,
    FaultSpec,
    MS_PER_HOUR,
)


class TestFaultSpec:
    def test_unit_conversions(self):
        spec = FaultSpec(mtbf_hours=2.0, mttr_hours=0.5)
        assert spec.mtbf_ms == 2.0 * MS_PER_HOUR
        assert spec.mttr_ms == 0.5 * MS_PER_HOUR

    def test_availability(self):
        spec = FaultSpec(mtbf_hours=99.0, mttr_hours=1.0)
        assert spec.availability == pytest.approx(0.99)

    def test_incidents_per_cycle(self):
        spec = FaultSpec(mtbf_hours=DEPRECIATION_CYCLE_HOURS / 3.0, mttr_hours=1.0)
        assert spec.incidents_per_cycle() == pytest.approx(3.0)
        assert spec.incidents_per_cycle(0.0) == 0.0

    def test_scaled_preserves_availability(self):
        spec = FaultSpec(mtbf_hours=100.0, mttr_hours=4.0)
        fast = spec.scaled(1000.0)
        assert fast.mtbf_hours == pytest.approx(0.1)
        assert fast.availability == pytest.approx(spec.availability)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(mtbf_hours=0.0, mttr_hours=1.0)
        with pytest.raises(ValueError):
            FaultSpec(mtbf_hours=1.0, mttr_hours=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(mtbf_hours=1.0, mttr_hours=1.0).scaled(0.0)
        with pytest.raises(ValueError):
            FaultSpec(mtbf_hours=1.0, mttr_hours=1.0).incidents_per_cycle(-1.0)


class TestFaultProfile:
    def test_default_covers_every_component(self):
        for ctype in ComponentType:
            spec = DEFAULT_FAULT_PROFILE.spec(ctype)
            assert spec is not None
            # Commodity parts are unreliable in aggregate, not per part.
            assert spec.availability > 0.99

    def test_missing_component_never_fails(self):
        profile = FaultProfile("p", {})
        assert profile.spec(ComponentType.DISK) is None
        assert profile.availability(ComponentType.DISK) == 1.0
        assert profile.serial_availability(list(ComponentType)) == 1.0

    def test_serial_availability_is_a_product(self):
        profile = FaultProfile(
            "p",
            {
                ComponentType.SERVER: FaultSpec(9.0, 1.0),
                ComponentType.DISK: FaultSpec(4.0, 1.0),
            },
        )
        assert profile.serial_availability(
            [ComponentType.SERVER, ComponentType.DISK]
        ) == pytest.approx(0.9 * 0.8)

    def test_accelerated_keeps_availability(self):
        fast = DEFAULT_FAULT_PROFILE.accelerated(1e6)
        for ctype in ComponentType:
            assert fast.availability(ctype) == pytest.approx(
                DEFAULT_FAULT_PROFILE.availability(ctype)
            )
        assert "x1e+06" in fast.name or "x1000000" in fast.name

    def test_replace_overrides_one_spec(self):
        spec = FaultSpec(1.0, 1.0)
        profile = DEFAULT_FAULT_PROFILE.replace(memory_blade=spec)
        assert profile.spec(ComponentType.MEMORY_BLADE) is spec
        assert profile.spec(ComponentType.DISK) is DEFAULT_FAULT_PROFILE.spec(
            ComponentType.DISK
        )

    def test_replace_rejects_unknown_component(self):
        with pytest.raises(KeyError, match="unknown component"):
            DEFAULT_FAULT_PROFILE.replace(gpu=FaultSpec(1.0, 1.0))

    def test_specs_are_frozen(self):
        with pytest.raises(TypeError):
            DEFAULT_FAULT_PROFILE.specs[ComponentType.DISK] = FaultSpec(1.0, 1.0)
