"""Tests of the stochastic fault injector and failure domains."""


from repro.faults.injector import FailureDomain, FaultInjector
from repro.faults.model import ComponentType, FaultProfile, FaultSpec
from repro.simulator.engine import Simulation
from repro.simulator.telemetry import AvailabilityTracker

#: Seconds-scale profile so a short run sees many fail/repair cycles.
FAST = FaultProfile(
    "fast",
    {
        ComponentType.SERVER: FaultSpec(10.0 / 3600.0, 1.0 / 3600.0),
        ComponentType.MEMORY_BLADE: FaultSpec(5.0 / 3600.0, 1.0 / 3600.0),
    },
)


def _run(sim, until_s=600.0):
    sim.run(until_ms=until_s * 1000.0)


class TestFaultInjector:
    def test_component_cycles_between_fail_and_repair(self):
        sim = Simulation()
        injector = FaultInjector(sim, FAST, seed=1)
        transitions = []
        injector.register(
            "s0", ComponentType.SERVER,
            on_fail=lambda: transitions.append("fail"),
            on_repair=lambda: transitions.append("repair"),
        )
        _run(sim)
        assert injector.total_failures > 5
        assert injector.failure_counts[ComponentType.SERVER] == transitions.count(
            "fail"
        )
        # Strict alternation: fail, repair, fail, repair, ...
        for i, kind in enumerate(transitions):
            assert kind == ("fail" if i % 2 == 0 else "repair")

    def test_event_log_is_time_ordered(self):
        sim = Simulation()
        injector = FaultInjector(sim, FAST, seed=2)
        injector.register("s0", ComponentType.SERVER)
        injector.register("b0", ComponentType.MEMORY_BLADE)
        _run(sim)
        times = [e.time_ms for e in injector.events]
        assert times == sorted(times)
        assert {e.kind for e in injector.events} == {"fail", "repair"}

    def test_unspecified_component_never_fails(self):
        sim = Simulation()
        injector = FaultInjector(sim, FAST, seed=1)
        component = injector.register("d0", ComponentType.DISK)
        injector.register("s0", ComponentType.SERVER)
        _run(sim)
        assert component.up
        assert component.failures == 0
        assert ComponentType.DISK not in injector.failure_counts

    def test_same_seed_same_schedule(self):
        logs = []
        for _ in range(2):
            sim = Simulation()
            injector = FaultInjector(sim, FAST, seed=42)
            injector.register("s0", ComponentType.SERVER)
            injector.register("b0", ComponentType.MEMORY_BLADE)
            _run(sim)
            logs.append([(e.time_ms, e.component, e.kind) for e in injector.events])
        assert logs[0] == logs[1]
        assert len(logs[0]) > 10

    def test_different_seed_different_schedule(self):
        logs = []
        for seed in (1, 2):
            sim = Simulation()
            injector = FaultInjector(sim, FAST, seed=seed)
            injector.register("s0", ComponentType.SERVER)
            _run(sim)
            logs.append([(e.time_ms, e.kind) for e in injector.events])
        assert logs[0] != logs[1]

    def test_tracker_accumulates_downtime(self):
        sim = Simulation()
        tracker = AvailabilityTracker()
        injector = FaultInjector(sim, FAST, seed=3, tracker=tracker)
        injector.register("s0", ComponentType.SERVER)
        _run(sim)
        tracker.finalize(sim.now)
        entity = tracker.entity("s0")
        assert entity.incidents == injector.total_failures
        assert 0.0 < entity.downtime_ms < entity.observed_ms
        assert 0.0 < entity.availability < 1.0


class TestFailureDomain:
    def test_degrade_and_restore_fan_out_in_order(self):
        domain = FailureDomain("blade")
        calls = []
        domain.attach(lambda: calls.append("a-"), lambda: calls.append("a+"))
        domain.attach(lambda: calls.append("b-"), lambda: calls.append("b+"))
        domain.degrade_all()
        domain.restore_all()
        assert calls == ["a-", "b-", "a+", "b+"]

    def test_late_attach_to_degraded_domain(self):
        domain = FailureDomain("blade")
        domain.degrade_all()
        calls = []
        domain.attach(lambda: calls.append("down"), lambda: calls.append("up"))
        assert calls == ["down"]

    def test_register_domain_is_driven_by_faults(self):
        sim = Simulation()
        injector = FaultInjector(sim, FAST, seed=5)
        domain = injector.register_domain("blade", ComponentType.MEMORY_BLADE)
        hits = {"down": 0, "up": 0}

        def down():
            hits["down"] += 1

        def up():
            hits["up"] += 1

        domain.attach(down, up)
        domain.attach(down, up)  # two members share the blast radius
        _run(sim)
        failures = injector.failure_counts[ComponentType.MEMORY_BLADE]
        assert failures > 0
        assert hits["down"] == 2 * failures
