"""Smoke tests for the example scripts (fast ones run in-process)."""

import importlib.util
import pathlib
import sys


_EXAMPLES = pathlib.Path(__file__).parents[1] / "examples"


def _load(name: str):
    path = _EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_all_examples_exist_and_have_main():
    expected = {
        "quickstart",
        "datacenter_planning",
        "memory_blade_sizing",
        "flash_cache_sizing",
        "custom_server_design",
        "cluster_tail_latency",
        "ensemble_memory_provisioning",
        "client_driver_session",
        "paper_walkthrough",
        "overload_surge",
        "trace_request",
    }
    found = {p.stem for p in _EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        module = _load(name)
        assert callable(module.main), name


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "Perf/TCO-$" in out
    assert "req/s" in out


def test_ensemble_memory_provisioning_runs(capsys):
    _load("ensemble_memory_provisioning").main()
    out = capsys.readouterr().out
    assert "saved" in out
    assert "conservative" in out or "optimistic" in out


def test_paper_walkthrough_runs(capsys):
    _load("paper_walkthrough").main()
    out = capsys.readouterr().out
    assert "Putting it all together" in out
    assert "N2" in out


def test_client_driver_session_runs(capsys):
    _load("client_driver_session").main()
    out = capsys.readouterr().out
    assert "transactions/s" in out
    assert "chosen" in out
