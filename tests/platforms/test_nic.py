"""Unit tests for NIC models."""

import pytest

from repro.platforms.nic import GIGABIT, TEN_GIGABIT, Nic


class TestNic:
    def test_bandwidth_conversion(self):
        assert GIGABIT.bandwidth_mb_s == pytest.approx(125.0)
        assert TEN_GIGABIT.bandwidth_mb_s == pytest.approx(1250.0)

    def test_transfer_time_includes_overhead(self):
        t = GIGABIT.transfer_time_ms(125_000)
        assert t == pytest.approx(GIGABIT.per_transfer_overhead_ms + 1.0)

    def test_zero_bytes_costs_only_overhead(self):
        assert GIGABIT.transfer_time_ms(0) == pytest.approx(
            GIGABIT.per_transfer_overhead_ms
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Nic(name="bad", bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            Nic(name="bad", bandwidth_gbps=1.0, per_transfer_overhead_ms=-1.0)
        with pytest.raises(ValueError):
            GIGABIT.transfer_time_ms(-1)
