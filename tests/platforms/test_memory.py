"""Unit tests for memory technologies and configurations."""

import pytest

from repro.platforms.memory import MemoryConfig, MemoryTechnology


class TestMemoryTechnology:
    def test_bandwidth_ordering(self):
        assert (
            MemoryTechnology.FBDIMM.bandwidth_factor
            > MemoryTechnology.DDR2.bandwidth_factor
            > MemoryTechnology.DDR1.bandwidth_factor
        )

    def test_ddr2_powerdown_savings_match_paper(self):
        """Paper: active power-down reduces power by more than 90% in DDR2."""
        assert MemoryTechnology.DDR2.active_powerdown_savings >= 0.90

    def test_powerdown_wake_cycles(self):
        """Paper: 6 DRAM cycles to wake."""
        assert MemoryTechnology.DDR2.powerdown_wake_cycles == 6


class TestMemoryConfig:
    def test_channel_bandwidth_includes_numa_efficiency(self):
        config = MemoryConfig(4.0, MemoryTechnology.FBDIMM, channels=4,
                              numa_efficiency=0.75)
        assert config.channel_bandwidth_factor == pytest.approx(0.75)
        assert config.total_bandwidth_factor == pytest.approx(3.0)

    def test_single_channel_ddr2(self):
        config = MemoryConfig(4.0, MemoryTechnology.DDR2)
        assert config.total_bandwidth_factor == pytest.approx(0.8)

    def test_resized_preserves_everything_but_capacity(self):
        config = MemoryConfig(4.0, MemoryTechnology.DDR2, channels=2,
                              numa_efficiency=0.9)
        resized = config.resized(1.0)
        assert resized.capacity_gb == 1.0
        assert resized.technology is MemoryTechnology.DDR2
        assert resized.channels == 2
        assert resized.numa_efficiency == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(0.0, MemoryTechnology.DDR2)
        with pytest.raises(ValueError):
            MemoryConfig(4.0, MemoryTechnology.DDR2, channels=0)
        with pytest.raises(ValueError):
            MemoryConfig(4.0, MemoryTechnology.DDR2, numa_efficiency=0.0)
        with pytest.raises(ValueError):
            MemoryConfig(4.0, MemoryTechnology.DDR2, numa_efficiency=1.2)
