"""Tests of the platform performance-scaling model."""

import pytest

from repro.platforms.catalog import PLATFORMS, platform, platform_names
from repro.platforms.memory import MemoryConfig, MemoryTechnology
from repro.platforms.nic import GIGABIT, TEN_GIGABIT
from repro.platforms.storage import LAPTOP_DISK


class TestCatalog:
    def test_six_platforms_in_order(self):
        assert platform_names() == ["srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"]
        assert set(PLATFORMS) == set(platform_names())

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            platform("nope")

    def test_table2_microarchitecture(self):
        assert platform("srvr1").cpu.total_cores == 8
        assert platform("srvr2").cpu.total_cores == 4
        assert platform("emb2").cpu.total_cores == 1
        assert not platform("emb2").cpu.is_out_of_order

    def test_nics_match_table2(self):
        assert platform("srvr1").nic is TEN_GIGABIT
        for name in ("srvr2", "desk", "mobl", "emb1", "emb2"):
            assert platform(name).nic is GIGABIT

    def test_all_systems_have_4gb(self):
        for name in platform_names():
            assert platform(name).memory.capacity_gb == 4.0


class TestCoreSpeed:
    def test_reference_core_speed_is_identity(self):
        """srvr1's core at zero cache sensitivity is the reference."""
        speed = platform("srvr1").core_speed(cache_sensitivity=0.0)
        assert speed == pytest.approx(2.6)

    def test_speed_ordering_follows_table2(self):
        speeds = [
            platform(n).core_speed(0.1) for n in ("srvr1", "desk", "mobl", "emb1", "emb2")
        ]
        assert speeds == sorted(speeds, reverse=True)

    def test_cache_sensitivity_penalizes_small_l2(self):
        desk = platform("desk")
        assert desk.core_speed(0.2) < desk.core_speed(0.0)
        # srvr1 is at the reference L2: no penalty at any sensitivity.
        assert platform("srvr1").core_speed(0.5) == pytest.approx(2.6)

    def test_inorder_ipc_override(self):
        emb2 = platform("emb2")
        assert emb2.core_speed(0.0, inorder_ipc_factor=0.8) > emb2.core_speed(
            0.0, inorder_ipc_factor=0.45
        )
        # Override is ignored for out-of-order cores.
        desk = platform("desk")
        assert desk.core_speed(0.0, inorder_ipc_factor=0.1) == desk.core_speed(0.0)


class TestCpuTime:
    def test_reference_time_is_demand(self):
        assert platform("srvr1").cpu_time_ms(40.0, 0.0) == pytest.approx(40.0)

    def test_slower_cores_take_longer(self):
        t_emb = platform("emb1").cpu_time_ms(40.0, 0.1)
        t_srv = platform("srvr1").cpu_time_ms(40.0, 0.1)
        assert t_emb > 2 * t_srv

    def test_stall_fraction_softens_scaling(self):
        emb1 = platform("emb1")
        scaled = emb1.cpu_time_ms(40.0, 0.1, stall_fraction=0.0)
        stalled = emb1.cpu_time_ms(40.0, 0.1, stall_fraction=0.3)
        assert stalled < scaled
        # On the reference platform the stall fraction changes nothing.
        assert platform("srvr1").cpu_time_ms(40.0, 0.0, stall_fraction=0.3) == (
            pytest.approx(40.0)
        )

    def test_stall_fraction_bounds(self):
        with pytest.raises(ValueError):
            platform("desk").cpu_time_ms(1.0, 0.0, stall_fraction=1.0)
        with pytest.raises(ValueError):
            platform("desk").cpu_time_ms(1.0, 0.0, stall_fraction=-0.1)


class TestOtherResources:
    def test_memory_channel_time_uses_technology_and_numa(self):
        srvr1 = platform("srvr1")  # FB-DIMM at 0.75 NUMA efficiency
        assert srvr1.memory_channel_time_ms(30.0) == pytest.approx(40.0)
        emb1 = platform("emb1")  # DDR2
        assert emb1.memory_channel_time_ms(30.0) == pytest.approx(37.5)

    def test_disk_time_combines_seeks_and_transfer(self):
        desk = platform("desk")
        assert desk.disk_time_ms(1.0, 70_000) == pytest.approx(5.0)

    def test_disk_time_rejects_negative_ios(self):
        with pytest.raises(ValueError):
            platform("desk").disk_time_ms(-1.0, 0.0)

    def test_net_time_scales_with_nic(self):
        t1 = platform("srvr2").net_time_ms(125_000)
        t10 = platform("srvr1").net_time_ms(125_000)
        assert t1 > 9 * t10

    def test_with_disk_and_with_memory_return_modified_copies(self):
        base = platform("emb1")
        laptop = base.with_disk(LAPTOP_DISK)
        assert laptop.disk is LAPTOP_DISK
        assert base.disk is not LAPTOP_DISK
        small = base.with_memory(MemoryConfig(1.0, MemoryTechnology.DDR2))
        assert small.memory.capacity_gb == 1.0
        assert base.memory.capacity_gb == 4.0
