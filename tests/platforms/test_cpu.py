"""Unit tests for CPU models."""

import pytest

from repro.platforms.catalog import platform
from repro.platforms.cpu import CpuModel, Microarchitecture


def _cpu(**kw):
    defaults = dict(
        name="cpu",
        sockets=1,
        cores_per_socket=2,
        frequency_ghz=2.0,
        microarchitecture=Microarchitecture.OUT_OF_ORDER,
        l1_kb=32,
        l2_kb=2048,
    )
    defaults.update(kw)
    return CpuModel(**defaults)


class TestCpuModel:
    def test_total_cores(self):
        assert _cpu(sockets=2, cores_per_socket=4).total_cores == 8

    def test_l2_mb(self):
        assert _cpu(l2_kb=8192).l2_mb == 8.0

    def test_out_of_order_flag(self):
        assert _cpu().is_out_of_order
        assert not _cpu(microarchitecture=Microarchitecture.IN_ORDER).is_out_of_order

    def test_validation(self):
        with pytest.raises(ValueError):
            _cpu(sockets=0)
        with pytest.raises(ValueError):
            _cpu(frequency_ghz=0)
        with pytest.raises(ValueError):
            _cpu(l2_kb=0)

    def test_summary_matches_table2_style(self):
        srvr1 = platform("srvr1").cpu
        assert srvr1.summary() == "2p x 4 cores, 2.6 GHz, OoO, 64K/8MB L1/L2"

    def test_summary_sub_ghz_uses_mhz(self):
        emb2 = platform("emb2").cpu
        assert "600MHz" in emb2.summary()
        assert "in-order" in emb2.summary()

    def test_summary_small_l2_in_kb(self):
        emb2 = platform("emb2").cpu
        assert "128K" in emb2.summary()
