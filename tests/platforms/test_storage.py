"""Unit tests for storage devices (Table 3(a) validation)."""

import pytest

from repro.platforms.storage import (
    DESKTOP_DISK,
    FLASH_1GB,
    LAPTOP2_DISK,
    LAPTOP_DISK,
    SERVER_DISK_15K,
    StorageDevice,
    StorageKind,
    StorageLocation,
)


class TestTable3aValues:
    """Every number in Table 3(a)."""

    def test_flash(self):
        assert FLASH_1GB.bandwidth_mb_s == 50
        assert FLASH_1GB.read_latency_ms == pytest.approx(0.020)
        assert FLASH_1GB.write_latency_ms == pytest.approx(0.200)
        assert FLASH_1GB.erase_latency_ms == pytest.approx(1.2)
        assert FLASH_1GB.capacity_gb == 1
        assert FLASH_1GB.power_w == 0.5
        assert FLASH_1GB.price_usd == 14
        assert FLASH_1GB.write_endurance == 100_000

    def test_laptop_disks(self):
        for disk, price in ((LAPTOP_DISK, 80), (LAPTOP2_DISK, 40)):
            assert disk.bandwidth_mb_s == 20
            assert disk.read_latency_ms == 15
            assert disk.capacity_gb == 200
            assert disk.power_w == 2
            assert disk.price_usd == price
            assert disk.is_remote

    def test_desktop_disk(self):
        assert DESKTOP_DISK.bandwidth_mb_s == 70
        assert DESKTOP_DISK.read_latency_ms == 4
        assert DESKTOP_DISK.capacity_gb == 500
        assert DESKTOP_DISK.power_w == 10
        assert DESKTOP_DISK.price_usd == 120
        assert not DESKTOP_DISK.is_remote

    def test_server_disk_faster_than_desktop(self):
        assert SERVER_DISK_15K.read_latency_ms < DESKTOP_DISK.read_latency_ms
        assert SERVER_DISK_15K.bandwidth_mb_s > DESKTOP_DISK.bandwidth_mb_s


class TestAccessTime:
    def test_latency_plus_transfer(self):
        # 4 ms seek + 70 KB / (70 MB/s) = 4 + 1 ms
        assert DESKTOP_DISK.access_time_ms(70_000) == pytest.approx(5.0)

    def test_write_uses_write_latency(self):
        t_read = FLASH_1GB.access_time_ms(0)
        t_write = FLASH_1GB.access_time_ms(0, write=True)
        assert t_write == pytest.approx(0.2)
        assert t_read == pytest.approx(0.02)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DESKTOP_DISK.access_time_ms(-1)


class TestRelocated:
    def test_relocation_adds_latency_and_marks_remote(self):
        moved = DESKTOP_DISK.relocated(StorageLocation.REMOTE, extra_latency_ms=2.0)
        assert moved.is_remote
        assert moved.read_latency_ms == pytest.approx(6.0)
        assert moved.write_latency_ms == pytest.approx(6.0)
        assert moved.price_usd == DESKTOP_DISK.price_usd

    def test_flash_kind_flag(self):
        assert FLASH_1GB.is_flash
        assert FLASH_1GB.kind is StorageKind.FLASH
        assert not DESKTOP_DISK.is_flash


class TestValidation:
    def test_rejects_bad_parameters(self):
        good = dict(
            name="d", kind=StorageKind.DISK, bandwidth_mb_s=10.0,
            read_latency_ms=1.0, write_latency_ms=1.0, capacity_gb=10.0,
            power_w=1.0, price_usd=10.0,
        )
        for key, bad in [
            ("bandwidth_mb_s", 0.0),
            ("read_latency_ms", -1.0),
            ("capacity_gb", 0.0),
            ("power_w", -1.0),
            ("price_usd", -1.0),
        ]:
            with pytest.raises(ValueError):
                StorageDevice(**{**good, key: bad})
