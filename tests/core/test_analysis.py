"""Tests of the design-evaluation pipeline."""

import pytest

from repro.core.analysis import evaluate_designs
from repro.core.designs import baseline_design, n2_design


@pytest.fixture(scope="module")
def evaluation():
    return evaluate_designs(
        [baseline_design("srvr1"), baseline_design("desk"), n2_design()],
        ["webmail", "mapred-wc"],
        baseline="srvr1",
        method="analytic",
    )


class TestEvaluateDesigns:
    def test_all_tables_present(self, evaluation):
        assert set(evaluation.tables) == {
            "Perf", "Perf/Inf-$", "Perf/W", "Perf/P&C-$", "Perf/TCO-$",
        }

    def test_baseline_normalized_to_one(self, evaluation):
        for table in evaluation.tables.values():
            for bench in table.benchmarks:
                assert table.value(bench, "srvr1") == pytest.approx(1.0)

    def test_designs_and_benchmarks_recorded(self, evaluation):
        assert evaluation.designs == ["srvr1", "desk", "N2"]
        assert evaluation.benchmarks == ["webmail", "mapred-wc"]

    def test_metrics_structured_by_benchmark(self, evaluation):
        assert set(evaluation.metrics) == {"webmail", "mapred-wc"}
        m = evaluation.metrics["webmail"]["N2"]
        assert m.performance > 0
        assert m.tco_usd > 0

    def test_n2_wins_mapreduce_perf_per_tco(self, evaluation):
        table = evaluation.table("Perf/TCO-$")
        assert table.value("mapred-wc", "N2") > 2.0

    def test_render_mentions_metric_names(self, evaluation):
        text = evaluation.render(["Perf/TCO-$"])
        assert "Perf/TCO-$" in text
        assert "mapred-wc" in text

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            evaluate_designs(
                [baseline_design("desk")], ["webmail"], baseline="srvr1",
                method="analytic",
            )
