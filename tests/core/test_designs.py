"""Tests of design composition (baselines, N1, N2)."""

import pytest

from repro.core.designs import baseline_design, n1_design, n2_design
from repro.costmodel.catalog import server_bill
from repro.costmodel.components import Component


class TestBaselineDesign:
    def test_uses_stock_bill_and_rack(self):
        design = baseline_design("srvr2")
        assert design.bill().hardware_cost_usd == server_bill("srvr2").hardware_cost_usd
        assert design.rack().servers_per_rack == 40
        assert design.memory_slowdown == 1.0
        assert design.disk_model_for("websearch") is None

    def test_tco_matches_catalog(self):
        design = baseline_design("srvr1")
        assert design.tco_breakdown().total_usd == pytest.approx(5758, abs=10)


class TestN1Design:
    def test_composition(self):
        n1 = n1_design()
        assert n1.platform_name == "mobl"
        assert n1.memory_scheme is None
        assert n1.disk_config is None
        assert n1.memory_slowdown == 1.0

    def test_dense_packaging(self):
        assert n1_design().rack().servers_per_rack == 320

    def test_fan_power_reduced_but_psu_kept(self):
        n1 = n1_design()
        base = server_bill("mobl")
        new = n1.bill().components[Component.POWER_FANS]
        old = base.components[Component.POWER_FANS]
        assert new.power_w < old.power_w
        # Only the fan half shrinks: floor at (1 - FAN_FRACTION).
        assert new.power_w > 0.5 * old.power_w * 0.99
        assert new.cost_usd < old.cost_usd

    def test_other_components_untouched(self):
        n1 = n1_design()
        base = server_bill("mobl")
        for component in (Component.CPU, Component.MEMORY, Component.DISK):
            assert n1.bill().components[component] == base.components[component]


class TestN2Design:
    def test_composition(self):
        n2 = n2_design()
        assert n2.platform_name == "emb1"
        assert n2.memory_scheme is not None
        assert n2.disk_config is not None
        assert n2.memory_slowdown == pytest.approx(1.02)

    def test_densest_packaging(self):
        assert n2_design().rack().servers_per_rack == 1250

    def test_memory_provisioning_applied(self):
        n2 = n2_design()
        base_memory = server_bill("emb1").components[Component.MEMORY]
        new_memory = n2.bill().components[Component.MEMORY]
        assert new_memory.cost_usd < base_memory.cost_usd
        assert new_memory.power_w < base_memory.power_w

    def test_flash_disk_config_applied(self):
        n2 = n2_design()
        disk = n2.bill().components[Component.DISK]
        assert disk.cost_usd == pytest.approx(80 + 14)
        assert disk.power_w == pytest.approx(2.5)
        model = n2.disk_model_for("ytube")
        assert model is not None
        assert hasattr(model, "cache")

    def test_n2_cheaper_and_cooler_than_emb1(self):
        n2 = n2_design()
        base = server_bill("emb1")
        assert n2.bill().hardware_cost_usd < base.hardware_cost_usd
        assert n2.bill().power_w < base.power_w

    def test_tco_far_below_srvr1(self):
        ratio = (
            baseline_design("srvr1").tco_breakdown().total_usd
            / n2_design().tco_breakdown().total_usd
        )
        assert ratio > 6.0


class TestMemorySlowdownFor:
    def test_default_matches_uniform_assumption(self):
        n2 = n2_design()
        for bench in ("websearch", "webmail", "not-a-trace"):
            assert n2.memory_slowdown_for(bench) == n2.memory_slowdown
        n1 = n1_design()
        assert n1.memory_slowdown_for("websearch") == 1.0
        assert baseline_design("srvr1").memory_slowdown_for("websearch") == 1.0

    def test_measured_mode_uses_trace_curve(self):
        from dataclasses import replace

        from repro.memsim.twolevel import measured_slowdown

        measured = replace(n2_design(), measured_memory=True)
        slowdown = measured.memory_slowdown_for("webmail")
        expected = 1.0 + measured_slowdown(
            "webmail", measured.memory_scheme.local_fraction
        )
        assert slowdown == expected
        assert slowdown >= 1.0
        # Benchmarks without a page trace keep the assumed uniform 2%.
        assert measured.memory_slowdown_for("not-a-trace") == pytest.approx(1.02)
