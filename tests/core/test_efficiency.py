"""Tests of efficiency-table construction."""

import pytest

from repro.core.efficiency import HMEAN_ROW, build_efficiency_tables
from repro.core.metrics import METRIC_ATTRIBUTES, EfficiencyMetrics


def _metrics(system, benchmark, performance):
    return EfficiencyMetrics(
        system=system,
        benchmark=benchmark,
        performance=performance,
        power_w=100.0 if system == "base" else 50.0,
        infrastructure_usd=1000.0 if system == "base" else 400.0,
        power_cooling_usd=800.0 if system == "base" else 300.0,
    )


@pytest.fixture
def metrics():
    return {
        "bench-a": {
            "base": _metrics("base", "bench-a", 100.0),
            "new": _metrics("new", "bench-a", 50.0),
        },
        "bench-b": {
            "base": _metrics("base", "bench-b", 10.0),
            "new": _metrics("new", "bench-b", 10.0),
        },
    }


class TestBuildEfficiencyTables:
    def test_builds_every_metric_block(self, metrics):
        tables = build_efficiency_tables(metrics, "base", METRIC_ATTRIBUTES)
        assert set(tables) == set(METRIC_ATTRIBUTES)

    def test_baseline_column_is_unity(self, metrics):
        tables = build_efficiency_tables(metrics, "base", METRIC_ATTRIBUTES)
        for table in tables.values():
            for bench in table.benchmarks:
                assert table.value(bench, "base") == pytest.approx(1.0)
            assert table.hmean("base") == pytest.approx(1.0)

    def test_perf_ratios(self, metrics):
        perf = build_efficiency_tables(metrics, "base", METRIC_ATTRIBUTES)["Perf"]
        assert perf.value("bench-a", "new") == pytest.approx(0.5)
        assert perf.value("bench-b", "new") == pytest.approx(1.0)
        # HMean of 0.5 and 1.0.
        assert perf.hmean("new") == pytest.approx(2 / 3)

    def test_cost_normalized_blocks_divide_by_cost_ratio(self, metrics):
        tables = build_efficiency_tables(metrics, "base", METRIC_ATTRIBUTES)
        # new has 2.5x cheaper infrastructure: Perf/Inf-$ = perf * 2.5.
        inf = tables["Perf/Inf-$"]
        assert inf.value("bench-a", "new") == pytest.approx(0.5 * 2.5)

    def test_render_contains_all_rows(self, metrics):
        table = build_efficiency_tables(metrics, "base", METRIC_ATTRIBUTES)["Perf"]
        text = table.render()
        assert "bench-a" in text and HMEAN_ROW in text
        assert "%" in text
        plain = table.render(percent=False)
        assert "%" not in plain

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            build_efficiency_tables({}, "base", METRIC_ATTRIBUTES)

    def test_nonpositive_baseline_rejected(self, metrics):
        metrics["bench-a"]["base"] = _metrics("base", "bench-a", 0.0)
        with pytest.raises(ValueError):
            build_efficiency_tables(metrics, "base", {"Perf": "performance"})
