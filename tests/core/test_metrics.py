"""Tests (incl. property-based) of the efficiency metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    EfficiencyMetrics,
    METRIC_ATTRIBUTES,
    harmonic_mean,
    relative_efficiency,
)


def _metrics(system="s", performance=100.0, power=100.0, inf=1000.0, pc=800.0):
    return EfficiencyMetrics(
        system=system,
        benchmark="bench",
        performance=performance,
        power_w=power,
        infrastructure_usd=inf,
        power_cooling_usd=pc,
    )


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_constant_sequence(self):
        assert harmonic_mean([5.0] * 4) == pytest.approx(5.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_min_and_arithmetic_mean(self, values):
        h = harmonic_mean(values)
        assert min(values) - 1e-9 <= h <= sum(values) / len(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_homogeneous_under_scaling(self, values, factor):
        scaled = harmonic_mean([v * factor for v in values])
        assert scaled == pytest.approx(harmonic_mean(values) * factor, rel=1e-6)


class TestEfficiencyMetrics:
    def test_derived_ratios(self):
        m = _metrics()
        assert m.tco_usd == 1800.0
        assert m.perf_per_watt == pytest.approx(1.0)
        assert m.perf_per_inf_usd == pytest.approx(0.1)
        assert m.perf_per_pc_usd == pytest.approx(0.125)
        assert m.perf_per_tco_usd == pytest.approx(100 / 1800)

    def test_validation(self):
        with pytest.raises(ValueError):
            _metrics(performance=-1.0)
        with pytest.raises(ValueError):
            _metrics(power=0.0)
        with pytest.raises(ValueError):
            _metrics(inf=0.0)

    def test_metric_attribute_registry_resolves(self):
        m = _metrics()
        for display, attribute in METRIC_ATTRIBUTES.items():
            assert getattr(m, attribute) >= 0, display


class TestRelativeEfficiency:
    def test_ratios_against_baseline(self):
        table = {
            "base": _metrics("base", performance=100.0),
            "fast": _metrics("fast", performance=200.0),
        }
        rel = relative_efficiency(table, "base", "performance")
        assert rel["base"] == pytest.approx(1.0)
        assert rel["fast"] == pytest.approx(2.0)

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            relative_efficiency({"a": _metrics("a")}, "b", "performance")

    def test_zero_baseline_metric(self):
        table = {"base": _metrics("base", performance=0.0)}
        with pytest.raises(ValueError):
            relative_efficiency(table, "base", "performance")
