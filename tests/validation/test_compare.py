"""Tests of the paper-vs-measured comparison machinery."""

import pytest

from repro.validation.compare import (
    CellDelta,
    compare_matrix,
    render_comparison,
    summarize,
)
from repro.validation.reference import (
    PAPER_FIGURE2C_PERF,
    PAPER_FIGURE5_TCO,
    PAPER_TABLE2,
)


class TestCellDelta:
    def test_deltas(self):
        d = CellDelta(row="r", column="c", paper=0.5, measured=0.6)
        assert d.absolute_delta == pytest.approx(0.1)
        assert d.relative_delta == pytest.approx(0.2)
        assert d.within(0.1)
        assert not d.within(0.05)

    def test_zero_paper_value(self):
        d = CellDelta("r", "c", paper=0.0, measured=0.1)
        assert d.relative_delta == float("inf")
        assert CellDelta("r", "c", 0.0, 0.0).relative_delta == 0.0


class TestCompareMatrix:
    def test_pairs_overlapping_cells(self):
        paper = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0}}
        measured = {"a": {"x": 1.1}, "b": {"x": 2.9, "z": 9.0}}
        deltas = compare_matrix(paper, measured)
        assert {(d.row, d.column) for d in deltas} == {("a", "x"), ("b", "x")}

    def test_empty_overlap(self):
        assert compare_matrix({"a": {"x": 1.0}}, {"b": {"x": 1.0}}) == []

    def test_perfect_match_summary(self):
        deltas = compare_matrix(PAPER_FIGURE2C_PERF, PAPER_FIGURE2C_PERF)
        assert all(d.absolute_delta == 0 for d in deltas)
        assert summarize(deltas).startswith(f"{len(deltas)}/{len(deltas)}")


class TestRendering:
    def test_report_flags_deviations(self):
        deltas = [
            CellDelta("a", "x", 0.5, 0.52),
            CellDelta("a", "y", 0.5, 0.9),
        ]
        text = render_comparison(deltas, band=0.1)
        assert "ok" in text and "DEVIATES" in text
        assert "1/2 cells" in text

    def test_empty_summary(self):
        assert "no overlapping" in summarize([])


class TestReferenceDataSanity:
    def test_table2_covers_all_systems(self):
        assert set(PAPER_TABLE2) == {"srvr1", "srvr2", "desk", "mobl", "emb1", "emb2"}

    def test_figure2c_rows_and_columns(self):
        assert set(PAPER_FIGURE2C_PERF) == {
            "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr", "HMean",
        }
        for row in PAPER_FIGURE2C_PERF.values():
            assert set(row) == {"srvr2", "desk", "mobl", "emb1", "emb2"}
            assert all(0 < v <= 1.0 for v in row.values())

    def test_figure5_headline(self):
        assert PAPER_FIGURE5_TCO["HMean"]["N1"] == pytest.approx(1.5)
        assert PAPER_FIGURE5_TCO["HMean"]["N2"] == pytest.approx(2.0)
