"""Tests for QoS specs and trackers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.qos import QosSpec, QosTracker


class TestQosSpec:
    def test_describe_matches_paper_style(self):
        spec = QosSpec(limit_ms=500.0, percentile=0.95)
        assert spec.describe() == ">95% of requests take <0.5 seconds"

    def test_validation(self):
        with pytest.raises(ValueError):
            QosSpec(limit_ms=0.0)
        with pytest.raises(ValueError):
            QosSpec(limit_ms=100.0, percentile=1.0)
        with pytest.raises(ValueError):
            QosSpec(limit_ms=100.0, percentile=0.0)


class TestQosTracker:
    def test_percentile_nearest_rank(self):
        tracker = QosTracker(QosSpec(limit_ms=100.0, percentile=0.5))
        for v in (10.0, 20.0, 30.0, 40.0):
            tracker.record(v)
        assert tracker.percentile_ms() == 20.0  # ceil(0.5*4) = 2nd smallest
        assert tracker.percentile_ms(0.95) == 40.0

    def test_satisfied_boundary(self):
        tracker = QosTracker(QosSpec(limit_ms=30.0, percentile=0.5))
        for v in (10.0, 20.0, 30.0, 40.0):
            tracker.record(v)
        assert tracker.satisfied()  # p50 = 20 <= 30

    def test_violation_rate(self):
        tracker = QosTracker(QosSpec(limit_ms=25.0))
        for v in (10.0, 20.0, 30.0, 40.0):
            tracker.record(v)
        assert tracker.violation_rate() == pytest.approx(0.5)

    def test_empty_tracker(self):
        tracker = QosTracker(QosSpec(limit_ms=100.0))
        assert tracker.satisfied()
        assert tracker.violation_rate() == 0.0
        with pytest.raises(ValueError):
            tracker.percentile_ms()

    def test_negative_sample_rejected(self):
        tracker = QosTracker(QosSpec(limit_ms=100.0))
        with pytest.raises(ValueError):
            tracker.record(-1.0)

    @given(
        samples=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1
        ),
        percentile=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_an_observed_sample_and_bounds_mass(
        self, samples, percentile
    ):
        tracker = QosTracker(QosSpec(limit_ms=1.0, percentile=percentile))
        for s in samples:
            tracker.record(s)
        value = tracker.percentile_ms()
        assert value in samples
        at_or_below = sum(1 for s in samples if s <= value) / len(samples)
        assert at_or_below >= percentile - 1e-9
