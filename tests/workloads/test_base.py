"""Tests for workload abstractions and the calibration invariant."""

import pytest

from repro.workloads.base import PopulationPolicy, Request, ResourceDemand
from repro.workloads.suite import BENCHMARK_SUITE, benchmark_names, make_workload


class TestResourceDemand:
    def test_defaults_are_zero(self):
        d = ResourceDemand()
        assert d.cpu_ms_ref == 0.0
        assert d.cpu_parallelism == 1
        assert not d.disk_write

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu_ms_ref=-1.0)
        with pytest.raises(ValueError):
            ResourceDemand(net_bytes=-1.0)
        with pytest.raises(ValueError):
            ResourceDemand(cpu_parallelism=0)

    def test_scaled_preserves_flags(self):
        d = ResourceDemand(
            cpu_ms_ref=10.0, disk_bytes=100.0, disk_write=True, cpu_parallelism=3
        )
        s = d.scaled(0.5)
        assert s.cpu_ms_ref == 5.0
        assert s.disk_bytes == 50.0
        assert s.disk_write
        assert s.cpu_parallelism == 3

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu_ms_ref=1.0).scaled(-1.0)


class TestPopulationPolicy:
    def test_fixed(self):
        assert PopulationPolicy(fixed=96).population(8) == 96

    def test_per_core(self):
        assert PopulationPolicy(per_core=4).population(8) == 32

    def test_exactly_one_mode(self):
        with pytest.raises(ValueError):
            PopulationPolicy()
        with pytest.raises(ValueError):
            PopulationPolicy(fixed=1, per_core=1)

    def test_positive_values(self):
        with pytest.raises(ValueError):
            PopulationPolicy(fixed=0)
        with pytest.raises(ValueError):
            PopulationPolicy(per_core=4).population(0)


class TestSuite:
    def test_five_benchmarks_in_paper_order(self):
        assert benchmark_names() == [
            "websearch",
            "webmail",
            "ytube",
            "mapred-wc",
            "mapred-wr",
        ]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            make_workload("sort")

    @pytest.mark.parametrize("name", list(BENCHMARK_SUITE))
    def test_sampler_means_match_calibrated_means(self, name):
        """The central calibration invariant: every workload's empirical
        mean demand equals the profile's calibrated mean demand."""
        workload = make_workload(name)
        target = workload.mean_demand()
        measured = workload.estimate_mean_demand(samples=8000)
        for attr in ("cpu_ms_ref", "mem_ms_ref", "disk_ios", "disk_bytes", "net_bytes"):
            expected = getattr(target, attr)
            got = getattr(measured, attr)
            assert got == pytest.approx(expected, rel=0.08), (name, attr)

    @pytest.mark.parametrize("name", list(BENCHMARK_SUITE))
    def test_samples_are_fresh_requests(self, name):
        import random

        workload = make_workload(name)
        rng = random.Random(0)
        requests = [workload.sample(rng) for _ in range(10)]
        assert all(isinstance(r, Request) for r in requests)
        # Demands vary across draws (statistical generator, not constant).
        cpus = {r.demand.cpu_ms_ref for r in requests}
        assert len(cpus) > 1

    def test_estimate_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            make_workload("websearch").estimate_mean_demand(samples=0)
