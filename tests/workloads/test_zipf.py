"""Tests (incl. property-based) for the Zipf sampler."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.zipf import ZipfSampler, discrete_sample, zipf_weights


class _FixedUniform:
    """random.Random stand-in returning a preset uniform draw."""

    def __init__(self, value):
        self._value = value

    def random(self):
        return self._value


class TestZipfWeights:
    def test_weights_are_decreasing(self):
        w = zipf_weights(100, 0.8)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_alpha_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(1000, 0.9)
        total = sum(sampler.probability(r) for r in range(1000))
        assert total == pytest.approx(1.0)

    def test_rank_zero_is_most_popular(self):
        sampler = ZipfSampler(1000, 0.9)
        assert sampler.probability(0) > sampler.probability(1)
        assert sampler.probability(1) > sampler.probability(100)

    def test_head_mass_monotonic_and_bounded(self):
        sampler = ZipfSampler(1000, 0.8)
        masses = [sampler.head_mass(k) for k in (0, 1, 10, 100, 1000, 5000)]
        assert masses[0] == 0.0
        assert all(a <= b for a, b in zip(masses, masses[1:]))
        assert masses[-1] == pytest.approx(1.0)

    def test_empirical_skew(self):
        sampler = ZipfSampler(100, 1.0)
        rng = random.Random(3)
        draws = [sampler.sample(rng) for _ in range(20_000)]
        top10 = sum(1 for d in draws if d < 10) / len(draws)
        assert top10 == pytest.approx(sampler.head_mass(10), abs=0.02)

    def test_probability_out_of_range(self):
        sampler = ZipfSampler(10, 1.0)
        with pytest.raises(IndexError):
            sampler.probability(10)

    @given(
        n=st.integers(min_value=1, max_value=5000),
        alpha=st.floats(min_value=0.0, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_samples_always_in_range(self, n, alpha, seed):
        sampler = ZipfSampler(n, alpha)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= sampler.sample(rng) < n

    def test_cdf_tail_is_exactly_one(self):
        sampler = ZipfSampler(1000, 1.2)
        assert sampler._cdf[-1] == 1.0

    @pytest.mark.parametrize("n", (1, 2, 7, 1000))
    def test_tail_draw_stays_in_range(self, n):
        """Regression: a uniform draw just below 1.0 (past any float
        shortfall in the accumulated CDF) must map to rank n-1, never n."""
        sampler = ZipfSampler(n, 1.1)
        u = np.nextafter(1.0, 0.0)
        assert sampler.sample(_FixedUniform(u)) == n - 1
        batch = sampler.sample_many(3, _BatchFixedUniform(u))
        assert np.all(batch == n - 1)


class _BatchFixedUniform:
    """numpy Generator stand-in returning a preset uniform draw."""

    def __init__(self, value):
        self._value = value

    def random(self, size):
        return np.full(size, self._value)


class TestSampleMany:
    def test_matches_scalar_for_same_uniform_draw(self):
        sampler = ZipfSampler(500, 0.9)
        rng = random.Random(7)
        draws = [rng.random() for _ in range(200)]
        scalar = [sampler.sample(_FixedUniform(u)) for u in draws]

        class _Replay:
            def random(self, size):
                return np.asarray(draws[:size])

        batch = sampler.sample_many(200, _Replay())
        assert batch.tolist() == scalar

    def test_batch_in_range_and_skewed(self):
        sampler = ZipfSampler(100, 1.0)
        batch = sampler.sample_many(20_000, np.random.default_rng(3))
        assert batch.min() >= 0 and batch.max() < 100
        top10 = float(np.mean(batch < 10))
        assert top10 == pytest.approx(sampler.head_mass(10), abs=0.02)

    def test_zero_size_and_validation(self):
        sampler = ZipfSampler(10, 1.0)
        assert sampler.sample_many(0, np.random.default_rng(0)).size == 0
        with pytest.raises(ValueError):
            sampler.sample_many(-1, np.random.default_rng(0))


class TestDiscreteSample:
    def test_respects_weights(self):
        rng = random.Random(5)
        draws = [discrete_sample([0.9, 0.1], rng) for _ in range(5000)]
        assert draws.count(0) / len(draws) == pytest.approx(0.9, abs=0.03)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            discrete_sample([0.0, 0.0], random.Random(1))
