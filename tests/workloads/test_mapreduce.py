"""Structural tests of the mapreduce task models."""

import random

import pytest

from repro.workloads.base import MetricKind
from repro.workloads.mapreduce import (
    REDUCE_FRACTION,
    THREADS_PER_CORE,
    WC_WORK_UNITS,
    WR_WORK_UNITS,
    make_mapred_wc,
    make_mapred_wr,
)


@pytest.fixture(scope="module")
def wc():
    return make_mapred_wc()


@pytest.fixture(scope="module")
def wr():
    return make_mapred_wr()


class TestMapreduce:
    def test_metric_is_execution_time(self, wc, wr):
        assert wc.profile.metric_kind is MetricKind.EXECUTION_TIME
        assert wr.profile.metric_kind is MetricKind.EXECUTION_TIME

    def test_four_threads_per_core(self, wc):
        assert THREADS_PER_CORE == 4
        assert wc.profile.population.population(8) == 32
        assert wc.profile.population.population(2) == 8

    def test_no_qos_and_no_think_time(self, wc):
        assert wc.profile.qos is None
        assert wc.profile.think_time_ms == 0.0

    def test_work_units_positive(self, wc, wr):
        assert wc.profile.total_work_units == WC_WORK_UNITS > 0
        assert wr.profile.total_work_units == WR_WORK_UNITS > 0

    def test_wr_tasks_are_writes_wc_are_reads(self, wc, wr):
        rng = random.Random(21)
        assert all(not wc.sample(rng).demand.disk_write for _ in range(50))
        assert all(wr.sample(rng).demand.disk_write for _ in range(50))

    def test_reduce_tasks_carry_more_network(self, wc):
        rng = random.Random(22)
        maps, reduces = [], []
        for _ in range(4000):
            r = wc.sample(rng)
            (reduces if r.kind == "reduce" else maps).append(r.demand.net_bytes)
        assert len(reduces) / 4000 == pytest.approx(REDUCE_FRACTION, abs=0.03)
        assert sum(reduces) / len(reduces) > 2 * sum(maps) / len(maps)

    def test_wr_is_more_disk_intensive_than_wc(self, wc, wr):
        assert (
            wr.mean_demand().disk_bytes > 2 * wc.mean_demand().disk_bytes
        )

    def test_task_sizes_are_near_uniform_blocks(self, wc):
        rng = random.Random(23)
        sizes = [wc.sample(rng).demand.disk_bytes for _ in range(2000)]
        mean = sum(sizes) / len(sizes)
        assert min(sizes) > 0.5 * mean
        assert max(sizes) < 1.6 * mean
