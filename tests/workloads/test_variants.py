"""Tests of the workload variants."""

import pytest

from repro.workloads.suite import make_workload
from repro.workloads.variants import (
    make_mapred_compute_heavy,
    make_webmail_light_users,
    make_websearch_large_index,
    make_ytube_viral,
)


class TestWebsearchLargeIndex:
    def test_scales_demands_sublinearly_for_cpu(self):
        base = make_workload("websearch").mean_demand()
        big = make_websearch_large_index(scale=4.0).mean_demand()
        assert big.cpu_ms_ref == pytest.approx(base.cpu_ms_ref * 2.0)
        assert big.disk_bytes == pytest.approx(base.disk_bytes * 4.0)

    def test_sampler_means_track_profile(self):
        workload = make_websearch_large_index(scale=4.0)
        measured = workload.estimate_mean_demand(samples=4000)
        assert measured.cpu_ms_ref == pytest.approx(
            workload.mean_demand().cpu_ms_ref, rel=0.1
        )

    def test_keeps_qos_and_metric(self):
        workload = make_websearch_large_index()
        base = make_workload("websearch")
        assert workload.profile.qos == base.profile.qos
        assert workload.profile.metric_kind == base.profile.metric_kind

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            make_websearch_large_index(scale=0.5)


class TestOtherVariants:
    def test_light_users_are_lighter_everywhere(self):
        base = make_workload("webmail").mean_demand()
        light = make_webmail_light_users().mean_demand()
        assert light.cpu_ms_ref < base.cpu_ms_ref
        assert light.disk_bytes < base.disk_bytes
        assert light.net_bytes < base.net_bytes

    def test_viral_catalog_reduces_disk_traffic_only(self):
        base = make_workload("ytube").mean_demand()
        viral = make_ytube_viral(alpha_boost=2.0).mean_demand()
        assert viral.disk_bytes == pytest.approx(base.disk_bytes / 2)
        assert viral.net_bytes == pytest.approx(base.net_bytes)
        assert viral.cpu_ms_ref == pytest.approx(base.cpu_ms_ref)

    def test_compute_heavy_mapreduce_shifts_bottleneck(self):
        """6x CPU work turns mapred-wc CPU-bound even on srvr1 (8 cores
        hide a lot of per-task compute)."""
        from repro.platforms.catalog import platform
        from repro.simulator.analytic import AnalyticServerModel

        heavy = make_mapred_compute_heavy(cpu_factor=6.0)
        model = AnalyticServerModel(platform("srvr1"), heavy)
        assert model.bottleneck() == "cpu"
        base_model = AnalyticServerModel(platform("srvr1"), make_workload("mapred-wc"))
        assert base_model.bottleneck() == "disk"

    def test_variant_names_are_distinct(self):
        names = {
            make_websearch_large_index().name,
            make_webmail_light_users().name,
            make_ytube_viral().name,
            make_mapred_compute_heavy().name,
        }
        assert len(names) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_ytube_viral(alpha_boost=0.5)
        with pytest.raises(ValueError):
            make_mapred_compute_heavy(cpu_factor=0.0)
