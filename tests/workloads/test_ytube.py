"""Structural tests of the ytube streaming model."""

import random

import pytest

from repro.workloads.base import MetricKind
from repro.workloads.ytube import CACHED_VIDEOS, DEFAULT_POPULATION, make_ytube


@pytest.fixture(scope="module")
def workload():
    return make_ytube()


class TestYtube:
    def test_metric_is_streaming_rps(self, workload):
        assert workload.profile.metric_kind is MetricKind.RPS_STREAM

    def test_connection_population_is_capped(self, workload):
        """The per-connection memory state limits concurrent streams; the
        adaptive driver must not grow past the cap."""
        assert workload.profile.max_population == DEFAULT_POPULATION

    def test_pacing_think_time_dominates_service(self, workload):
        assert workload.profile.think_time_ms >= 10_000

    def test_cached_streams_have_no_disk_traffic(self, workload):
        rng = random.Random(11)
        for _ in range(800):
            r = workload.sample(rng)
            if r.kind == "stream-cached":
                assert r.demand.disk_bytes == 0.0
                assert r.demand.disk_ios == 0.0
            else:
                assert r.kind == "stream-disk"
                assert r.demand.disk_bytes > 0.0

    def test_popular_head_is_served_from_cache(self, workload):
        """Zipf popularity concentrates traffic on the cached head."""
        rng = random.Random(12)
        cached = sum(
            1
            for _ in range(3000)
            if workload.sample(rng).kind == "stream-cached"
        )
        hit_rate = cached / 3000
        assert 0.25 < hit_rate < 0.9
        assert CACHED_VIDEOS > 0

    def test_transfer_bytes_are_heavy_tailed(self, workload):
        rng = random.Random(13)
        sizes = sorted(workload.sample(rng).demand.net_bytes for _ in range(4000))
        median = sizes[len(sizes) // 2]
        p99 = sizes[int(0.99 * len(sizes))]
        assert p99 > 3 * median

    def test_streaming_code_is_cache_insensitive(self, workload):
        assert workload.profile.cache_sensitivity <= 0.05
        assert workload.profile.inorder_ipc_factor >= 0.7
