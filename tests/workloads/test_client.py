"""Tests of the public client-driver API."""

import pytest

from repro.platforms.catalog import platform
from repro.simulator.server_sim import SimConfig
from repro.workloads.client import ClientDriver
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def config():
    return SimConfig(warmup_requests=100, measure_requests=700, seed=17)


class TestClientDriver:
    def test_reports_peak_transaction_rate(self, config):
        report = ClientDriver(
            platform("desk"), make_workload("websearch"), config=config
        ).run()
        assert report.transaction_rate_rps > 0
        assert report.qos_met
        assert report.clients >= 1
        assert report.workload == "websearch"
        assert report.platform == "desk"

    def test_explored_points_are_recorded(self, config):
        report = ClientDriver(
            platform("srvr2"), make_workload("webmail"), config=config
        ).run()
        assert len(report.explored) >= 2
        populations = [p.clients for p in report.explored]
        assert populations == sorted(populations)
        best = max(
            (p for p in report.explored if p.qos_met),
            key=lambda p: p.transaction_rate_rps,
        )
        assert report.transaction_rate_rps == pytest.approx(
            best.transaction_rate_rps
        )

    def test_think_time_override_reduces_per_client_rate(self, config):
        fast = ClientDriver(
            platform("desk"), make_workload("webmail"),
            think_time_ms=100.0, config=config,
        ).run()
        slow = ClientDriver(
            platform("desk"), make_workload("webmail"),
            think_time_ms=8000.0, config=config,
        ).run()
        # Peak rate is a server property; patient clients need more
        # concurrency to reach it.
        assert slow.clients > fast.clients

    def test_describe_mentions_rate_and_clients(self, config):
        report = ClientDriver(
            platform("desk"), make_workload("websearch"), config=config
        ).run()
        text = report.describe()
        assert "transactions/s" in text
        assert "clients" in text

    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError):
            ClientDriver(
                platform("desk"), make_workload("websearch"), think_time_ms=-1.0
            )
