"""Tests of the webmail session generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.webmail import ACTION_MIX, SessionGenerator


class TestSessionGenerator:
    def test_sessions_start_login_end_logout(self):
        generator = SessionGenerator()
        rng = random.Random(1)
        for _ in range(100):
            session = generator.session(rng)
            assert session[0] == "login"
            assert session[-1] == "logout"
            assert len(session) >= 3
            assert "login" not in session[1:-1]
            assert "logout" not in session[1:-1]

    def test_mean_length_matches_parameter(self):
        generator = SessionGenerator(mean_body_actions=8.0)
        rng = random.Random(2)
        lengths = [len(generator.session(rng)) - 2 for _ in range(4000)]
        assert sum(lengths) / len(lengths) == pytest.approx(8.0, rel=0.1)

    def test_body_mix_matches_stationary_weights(self):
        """The session structure must reproduce the i.i.d. action mix the
        throughput model uses (restricted to body actions)."""
        generator = SessionGenerator()
        rng = random.Random(3)
        counts = {}
        total = 0
        for _ in range(3000):
            for action in generator.session(rng)[1:-1]:
                counts[action] = counts.get(action, 0) + 1
                total += 1
        body = {a.name: a.weight for a in ACTION_MIX
                if a.name not in ("login", "logout")}
        body_total = sum(body.values())
        for name, weight in body.items():
            assert counts[name] / total == pytest.approx(
                weight / body_total, abs=0.03
            ), name

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionGenerator(mean_body_actions=0.5)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_sessions_always_well_formed(self, seed):
        generator = SessionGenerator(mean_body_actions=3.0)
        session = generator.session(random.Random(seed))
        assert session[0] == "login" and session[-1] == "logout"
        valid_names = {a.name for a in ACTION_MIX}
        assert all(name in valid_names for name in session)
