"""Structural tests of the webmail session model."""

import random

import pytest

from repro.workloads.webmail import ACTION_MIX, QOS, make_webmail


@pytest.fixture(scope="module")
def workload():
    return make_webmail()


class TestWebmail:
    def test_qos_matches_paper(self):
        assert QOS.limit_ms == 800.0
        assert QOS.percentile == 0.95

    def test_action_mix_weights_sum_to_one(self):
        assert sum(a.weight for a in ACTION_MIX) == pytest.approx(1.0)

    def test_reads_dominate_the_mix(self):
        """LoadSim heavy users read far more than they compose."""
        weights = {a.name: a.weight for a in ACTION_MIX}
        assert weights["read-message"] == max(weights.values())

    def test_sampled_action_frequencies_follow_weights(self, workload):
        rng = random.Random(7)
        counts = {}
        n = 6000
        for _ in range(n):
            kind = workload.sample(rng).kind
            counts[kind] = counts.get(kind, 0) + 1
        for action in ACTION_MIX:
            assert counts.get(action.name, 0) / n == pytest.approx(
                action.weight, abs=0.03
            )

    def test_attachments_inflate_transfer_sizes(self, workload):
        rng = random.Random(8)
        reads = [
            r.demand.net_bytes
            for r in (workload.sample(rng) for _ in range(6000))
            if r.kind == "read-message"
        ]
        reads.sort()
        # ~25% of reads carry an 8x attachment: strong upper-tail skew.
        assert reads[-1] > 4 * reads[len(reads) // 2]

    def test_php_is_single_threaded(self, workload):
        rng = random.Random(9)
        assert all(
            workload.sample(rng).demand.cpu_parallelism == 1 for _ in range(100)
        )

    def test_most_cache_sensitive_benchmark(self, workload):
        from repro.workloads.suite import make_workload

        others = [
            make_workload(n).profile.cache_sensitivity
            for n in ("websearch", "ytube", "mapred-wc", "mapred-wr")
        ]
        assert workload.profile.cache_sensitivity > max(others)
