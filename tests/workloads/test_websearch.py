"""Structural tests of the websearch query model."""

import random

import pytest

from repro.workloads.websearch import (
    CACHED_TERM_FRACTION,
    KEYWORD_COUNT_DIST,
    QOS,
    make_websearch,
)


@pytest.fixture(scope="module")
def workload():
    return make_websearch()


class TestWebsearch:
    def test_qos_matches_paper(self):
        assert QOS.limit_ms == 500.0
        assert QOS.percentile == 0.95

    def test_keyword_distribution_sums_to_one(self):
        assert sum(p for _, p in KEYWORD_COUNT_DIST) == pytest.approx(1.0)

    def test_query_kinds_encode_keyword_count(self, workload):
        rng = random.Random(1)
        kinds = {workload.sample(rng).kind for _ in range(400)}
        assert kinds <= {f"query-{k}kw" for k, _ in KEYWORD_COUNT_DIST}
        assert "query-1kw" in kinds and "query-2kw" in kinds

    def test_parallelism_tracks_keywords(self, workload):
        rng = random.Random(2)
        for _ in range(200):
            r = workload.sample(rng)
            keywords = int(r.kind.split("-")[1][0])
            assert r.demand.cpu_parallelism == keywords

    def test_many_queries_hit_only_cached_terms(self, workload):
        """25% of index terms are cached; popular (Zipf head) terms
        dominate, so a large share of queries needs no disk I/O."""
        rng = random.Random(3)
        no_disk = sum(
            1 for _ in range(2000) if workload.sample(rng).demand.disk_bytes == 0.0
        )
        assert no_disk / 2000 > 0.5

    def test_cached_fraction_is_papers(self):
        assert CACHED_TERM_FRACTION == 0.25

    def test_more_keywords_means_more_cpu_on_average(self, workload):
        rng = random.Random(4)
        by_kind = {}
        for _ in range(4000):
            r = workload.sample(rng)
            by_kind.setdefault(r.kind, []).append(r.demand.cpu_ms_ref)
        mean_1 = sum(by_kind["query-1kw"]) / len(by_kind["query-1kw"])
        mean_4 = sum(by_kind["query-4kw"]) / len(by_kind["query-4kw"])
        assert mean_4 > 2 * mean_1

    def test_profile_flags(self, workload):
        p = workload.profile
        assert p.cache_sensitivity > 0
        assert 0 < p.stall_fraction < 1
        assert p.think_time_ms > 0
        assert p.qos is not None


class TestFastDemandPath:
    """The tuple fast path must be a bitwise replica of ``sample``.

    The cohort cluster engine substitutes ``fast_demand`` for
    ``sample(rng).demand``; digest equality with the scalar engine rests
    on it returning identical component values AND consuming identical
    draws (the RNG state must match afterwards so every later draw in
    the simulation agrees too).  Covers the inlined Kinderman-Monahan
    rejection loops, the Zipf jump table, and the posting-weight table.
    """

    def test_values_and_rng_state_match_sample(self, workload):
        assert workload.fast_demand is not None
        for seed in range(20):
            slow_rng = random.Random(seed)
            fast_rng = random.Random(seed)
            for _ in range(50):
                d = workload.sample(slow_rng).demand
                fast = workload.fast_demand(fast_rng)
                assert fast == (
                    d.cpu_ms_ref,
                    d.mem_ms_ref,
                    d.disk_ios,
                    d.disk_bytes,
                    d.net_bytes,
                    d.disk_write,
                    d.cpu_parallelism,
                )
                assert slow_rng.getstate() == fast_rng.getstate()
