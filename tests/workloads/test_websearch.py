"""Structural tests of the websearch query model."""

import random

import pytest

from repro.workloads.websearch import (
    CACHED_TERM_FRACTION,
    KEYWORD_COUNT_DIST,
    QOS,
    make_websearch,
)


@pytest.fixture(scope="module")
def workload():
    return make_websearch()


class TestWebsearch:
    def test_qos_matches_paper(self):
        assert QOS.limit_ms == 500.0
        assert QOS.percentile == 0.95

    def test_keyword_distribution_sums_to_one(self):
        assert sum(p for _, p in KEYWORD_COUNT_DIST) == pytest.approx(1.0)

    def test_query_kinds_encode_keyword_count(self, workload):
        rng = random.Random(1)
        kinds = {workload.sample(rng).kind for _ in range(400)}
        assert kinds <= {f"query-{k}kw" for k, _ in KEYWORD_COUNT_DIST}
        assert "query-1kw" in kinds and "query-2kw" in kinds

    def test_parallelism_tracks_keywords(self, workload):
        rng = random.Random(2)
        for _ in range(200):
            r = workload.sample(rng)
            keywords = int(r.kind.split("-")[1][0])
            assert r.demand.cpu_parallelism == keywords

    def test_many_queries_hit_only_cached_terms(self, workload):
        """25% of index terms are cached; popular (Zipf head) terms
        dominate, so a large share of queries needs no disk I/O."""
        rng = random.Random(3)
        no_disk = sum(
            1 for _ in range(2000) if workload.sample(rng).demand.disk_bytes == 0.0
        )
        assert no_disk / 2000 > 0.5

    def test_cached_fraction_is_papers(self):
        assert CACHED_TERM_FRACTION == 0.25

    def test_more_keywords_means_more_cpu_on_average(self, workload):
        rng = random.Random(4)
        by_kind = {}
        for _ in range(4000):
            r = workload.sample(rng)
            by_kind.setdefault(r.kind, []).append(r.demand.cpu_ms_ref)
        mean_1 = sum(by_kind["query-1kw"]) / len(by_kind["query-1kw"])
        mean_4 = sum(by_kind["query-4kw"]) / len(by_kind["query-4kw"])
        assert mean_4 > 2 * mean_1

    def test_profile_flags(self, workload):
        p = workload.profile
        assert p.cache_sensitivity > 0
        assert 0 < p.stall_fraction < 1
        assert p.think_time_ms > 0
        assert p.qos is not None
