"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.platforms.catalog import PLATFORMS, platform
from repro.simulator.server_sim import SimConfig
from repro.workloads.suite import BENCHMARK_SUITE, make_workload


@pytest.fixture(scope="session")
def fast_config() -> SimConfig:
    """A smaller measurement protocol for quick DES runs in tests."""
    return SimConfig(warmup_requests=150, measure_requests=900, seed=11)


@pytest.fixture(params=list(PLATFORMS))
def any_platform(request):
    """Each of the six Table 2 platforms."""
    return platform(request.param)


@pytest.fixture(params=list(BENCHMARK_SUITE))
def any_workload(request):
    """Each of the five benchmarks."""
    return make_workload(request.param)


@pytest.fixture(scope="session")
def srvr1():
    return platform("srvr1")


@pytest.fixture(scope="session")
def emb1():
    return platform("emb1")
