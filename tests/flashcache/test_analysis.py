"""Tests of the Table 3(b) disk-configuration registry."""

import pytest

from repro.flashcache.analysis import (
    DISK_CONFIGURATIONS,
    disk_configuration,
)
from repro.flashcache.models import (
    FlashCachedDiskModel,
    LocalDiskModel,
    RemoteSanDiskModel,
)
from repro.platforms.storage import DESKTOP_DISK, FLASH_1GB, LAPTOP2_DISK, LAPTOP_DISK


class TestDiskConfigurations:
    def test_four_configurations_in_paper_order(self):
        names = [c.name for c in DISK_CONFIGURATIONS]
        assert names == [
            "baseline",
            "remote-laptop",
            "remote-laptop+flash",
            "remote-laptop2+flash",
        ]

    def test_lookup_by_name(self):
        assert disk_configuration("baseline").disk_cost_usd == DESKTOP_DISK.price_usd
        with pytest.raises(KeyError):
            disk_configuration("ssd")

    def test_costs_match_device_prices(self):
        flash = disk_configuration("remote-laptop+flash")
        assert flash.disk_cost_usd == LAPTOP_DISK.price_usd + FLASH_1GB.price_usd
        assert flash.disk_power_w == LAPTOP_DISK.power_w + FLASH_1GB.power_w
        cheap = disk_configuration("remote-laptop2+flash")
        assert cheap.disk_cost_usd == LAPTOP2_DISK.price_usd + FLASH_1GB.price_usd

    def test_disk_component_reflects_costs(self):
        config = disk_configuration("remote-laptop")
        component = config.disk_component()
        assert component.cost_usd == 80.0
        assert component.power_w == 2.0

    def test_model_factories_build_correct_types(self):
        assert isinstance(
            disk_configuration("baseline").make_disk_model("ytube"), LocalDiskModel
        )
        assert isinstance(
            disk_configuration("remote-laptop").make_disk_model("ytube"),
            RemoteSanDiskModel,
        )
        flash_model = disk_configuration("remote-laptop+flash").make_disk_model("ytube")
        assert isinstance(flash_model, FlashCachedDiskModel)

    def test_factories_build_fresh_state_per_run(self):
        config = disk_configuration("remote-laptop+flash")
        a = config.make_disk_model("websearch")
        b = config.make_disk_model("websearch")
        assert a is not b
        assert a.cache is not b.cache

    def test_flash_configs_use_low_power_devices(self):
        baseline = disk_configuration("baseline")
        for name in ("remote-laptop", "remote-laptop+flash", "remote-laptop2+flash"):
            assert disk_configuration(name).disk_power_w < baseline.disk_power_w
