"""Tests of the disk-model strategies (section 3.5)."""

import random

import pytest

from repro.flashcache.models import (
    FLASH_OBJECT_PARAMS,
    FlashCachedDiskModel,
    LocalDiskModel,
    RemoteSanDiskModel,
)
from repro.platforms.storage import DESKTOP_DISK, LAPTOP_DISK
from repro.workloads.base import ResourceDemand

_READ = ResourceDemand(disk_ios=2.0, disk_bytes=700_000.0)
_WRITE = ResourceDemand(disk_ios=2.0, disk_bytes=700_000.0, disk_write=True)


class TestLocalDiskModel:
    def test_service_matches_device_math(self):
        model = LocalDiskModel(DESKTOP_DISK)
        # 2 seeks * 4 ms + 700 KB / 70 MB/s = 8 + 10 ms
        assert model.service_ms(_READ, random.Random(0)) == pytest.approx(18.0)
        assert model.mean_service_ms(_READ) == pytest.approx(18.0)


class TestRemoteSanDiskModel:
    def test_striping_divides_transfer_but_not_overhead(self):
        stripe1 = RemoteSanDiskModel(LAPTOP_DISK, stripe_width=1, san_overhead_ms=0.0)
        stripe2 = RemoteSanDiskModel(LAPTOP_DISK, stripe_width=2, san_overhead_ms=0.0)
        assert stripe2.mean_service_ms(_READ) == pytest.approx(
            stripe1.mean_service_ms(_READ) / 2
        )
        with_overhead = RemoteSanDiskModel(
            LAPTOP_DISK, stripe_width=2, san_overhead_ms=8.0
        )
        assert with_overhead.mean_service_ms(_READ) == pytest.approx(
            stripe2.mean_service_ms(_READ) + 16.0
        )

    def test_remote_slower_than_local_desktop(self):
        remote = RemoteSanDiskModel(LAPTOP_DISK)
        local = LocalDiskModel(DESKTOP_DISK)
        assert remote.mean_service_ms(_READ) > local.mean_service_ms(_READ)

    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteSanDiskModel(LAPTOP_DISK, stripe_width=0)
        with pytest.raises(ValueError):
            RemoteSanDiskModel(LAPTOP_DISK, san_overhead_ms=-1.0)


class TestFlashCachedDiskModel:
    def _model(self, workload="websearch"):
        return FlashCachedDiskModel(RemoteSanDiskModel(LAPTOP_DISK), workload)

    def test_known_workloads_have_params(self):
        assert set(FLASH_OBJECT_PARAMS) == {
            "websearch", "webmail", "ytube", "mapred-wc", "mapred-wr",
        }
        with pytest.raises(KeyError):
            FlashCachedDiskModel(RemoteSanDiskModel(LAPTOP_DISK), "bogus")

    def test_hits_are_much_faster_than_misses(self):
        model = self._model()
        rng = random.Random(1)
        times = [model.service_ms(_READ, rng) for _ in range(3000)]
        hits = [t for t in times if t < 20.0]
        misses = [t for t in times if t >= 20.0]
        assert hits and misses
        assert max(hits) < min(misses)

    def test_observed_hit_rate_tracks_expected_bound(self):
        """The independent-reference estimate (hot head fits entirely) is
        an upper bound that warmed-up LRU approaches from below."""
        model = self._model()
        rng = random.Random(2)
        for _ in range(12_000):  # warm the cache
            model.service_ms(_READ, rng)
        before = (model.cache.stats.hits, model.cache.stats.lookups)
        for _ in range(12_000):
            model.service_ms(_READ, rng)
        hits = model.cache.stats.hits - before[0]
        lookups = model.cache.stats.lookups - before[1]
        observed = hits / lookups
        expected = model.expected_hit_rate()
        assert observed <= expected + 0.03
        assert observed > expected * 0.6

    def test_writes_pay_backing_disk(self):
        model = self._model("mapred-wr")
        rng = random.Random(3)
        backing = model.backing.mean_service_ms(_WRITE)
        assert model.service_ms(_WRITE, rng) == pytest.approx(backing)
        assert model.mean_service_ms(_WRITE) == pytest.approx(backing)

    def test_mean_service_blends_hit_and_miss(self):
        model = self._model()
        mean = model.mean_service_ms(_READ)
        backing = model.backing.mean_service_ms(_READ)
        assert mean < backing

    def test_scan_workloads_have_low_hit_rates(self):
        streaming = self._model("mapred-wc").expected_hit_rate()
        interactive = self._model("webmail").expected_hit_rate()
        assert streaming < interactive

    def test_zero_disk_demand_is_free(self):
        model = self._model()
        nothing = ResourceDemand()
        assert model.service_ms(nothing, random.Random(4)) == 0.0
