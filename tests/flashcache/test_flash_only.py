"""Tests of the flash-as-disk-replacement extension (section 4)."""

import random

import pytest

from repro.flashcache.analysis import disk_configuration, flash_only_configuration
from repro.workloads.base import ResourceDemand

_READ = ResourceDemand(disk_ios=2.0, disk_bytes=700_000.0)


class TestFlashOnlyConfiguration:
    def test_costs_scale_with_capacity(self):
        small = flash_only_configuration(capacity_gb=8.0)
        big = flash_only_configuration(capacity_gb=64.0)
        assert big.disk_cost_usd == pytest.approx(8 * small.disk_cost_usd)

    def test_default_32gb_at_2008_pricing(self):
        config = flash_only_configuration()
        assert config.disk_cost_usd == pytest.approx(448.0)
        assert config.disk_power_w == pytest.approx(2.0)

    def test_flash_storage_is_much_faster_than_disks(self):
        flash = flash_only_configuration().make_disk_model("websearch")
        laptop = disk_configuration("remote-laptop").make_disk_model("websearch")
        desktop = disk_configuration("baseline").make_disk_model("websearch")
        rng = random.Random(1)
        t_flash = flash.service_ms(_READ, rng)
        assert t_flash < desktop.service_ms(_READ, rng) / 2
        assert t_flash < laptop.service_ms(_READ, rng) / 5

    def test_flash_replacement_costs_more_than_flash_cache(self):
        """The section 4 trade-off: full replacement buys speed at ~4x
        the disk subsystem cost of the cache-plus-laptop design."""
        replacement = flash_only_configuration()
        cached = disk_configuration("remote-laptop+flash")
        assert replacement.disk_cost_usd > 3 * cached.disk_cost_usd

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_only_configuration(capacity_gb=0.0)
