"""Tests of the flash cache: eviction, wear, lifetime."""

import pytest

from repro.flashcache.cache import FlashCache
from repro.platforms.storage import DESKTOP_DISK, FLASH_1GB


@pytest.fixture
def cache():
    # 1 GB flash, 64 MB objects -> 16 slots.
    return FlashCache(FLASH_1GB, object_bytes=64 * (1 << 20))


class TestFlashCache:
    def test_requires_flash_device(self):
        with pytest.raises(ValueError):
            FlashCache(DESKTOP_DISK, object_bytes=4096)

    def test_capacity_from_device_and_object_size(self, cache):
        assert cache.capacity_objects == 16

    def test_miss_then_hit(self, cache):
        assert not cache.lookup(3)
        cache.insert(3)
        assert cache.lookup(3)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self, cache):
        for obj in range(16):
            cache.insert(obj)
        cache.lookup(0)          # refresh object 0
        cache.insert(99)         # evicts LRU = object 1
        assert cache.lookup(0)
        assert not cache.lookup(1)
        assert cache.resident_objects == 16
        assert cache.stats.evictions == 1

    def test_reinsert_refreshes_without_eviction(self, cache):
        cache.insert(1)
        cache.insert(1)
        assert cache.stats.insertions == 1
        assert cache.resident_objects == 1

    def test_wear_counts_insertions_and_updates(self, cache):
        cache.insert(1)
        cache.write_update(1)
        cache.write_update(42)  # not resident: no wear
        assert cache.stats.block_writes == 2

    def test_service_times_from_device(self, cache):
        read = cache.read_service_ms()
        write = cache.write_service_ms()
        assert write > read
        assert write >= FLASH_1GB.erase_latency_ms

    def test_flash_read_far_faster_than_disk_for_small_objects(self):
        """Flash wins on latency-dominated (small) objects; for huge
        streaming objects the desktop disk's higher bandwidth wins."""
        small = FlashCache(FLASH_1GB, object_bytes=256 * 1024)
        assert small.read_service_ms() < DESKTOP_DISK.access_time_ms(256 * 1024) / 1.4
        huge = FlashCache(FLASH_1GB, object_bytes=64 * (1 << 20))
        assert huge.read_service_ms() > DESKTOP_DISK.access_time_ms(64 * (1 << 20))


class TestLifetime:
    def test_lifetime_shrinks_with_write_rate(self, cache):
        slow = cache.estimated_lifetime_years(writes_per_second=1.0)
        fast = cache.estimated_lifetime_years(writes_per_second=100.0)
        assert slow == pytest.approx(100 * fast)

    def test_depreciation_cycle_survivable_at_realistic_rates(self):
        """The paper argues flash survives the 3-year cycle at disk-cache
        insert rates (tens of misses per second) -- but sustained heavy
        write traffic does wear it out, which is the paper's stated
        endurance concern."""
        cache = FlashCache(FLASH_1GB, object_bytes=4096)
        assert cache.estimated_lifetime_years(writes_per_second=50.0) > 3.0
        assert cache.estimated_lifetime_years(writes_per_second=5000.0) < 3.0

    def test_zero_rate_is_infinite(self, cache):
        assert cache.estimated_lifetime_years(0.0) == float("inf")
