"""Tracer: deterministic sampling, lifecycle, retroactive stage recording."""

import pytest

from repro.obs import SpanKind, Trace, Tracer
from repro.obs.tracer import _hash01, record_stage, record_stage_parts


class TestSampling:
    def test_hash_is_deterministic(self):
        assert _hash01(42, 17) == _hash01(42, 17)
        assert 0.0 <= _hash01(42, 17) < 1.0

    def test_seed_decorrelates_the_sampled_subset(self):
        picks_a = {i for i in range(500) if _hash01(i, 1) < 0.3}
        picks_b = {i for i in range(500) if _hash01(i, 2) < 0.3}
        assert picks_a != picks_b

    def test_rate_extremes_short_circuit(self):
        assert Tracer(sample_rate=1.0).sampled(123)
        assert not Tracer(sample_rate=0.0).sampled(123)

    def test_fractional_rate_hits_roughly_the_rate(self):
        tracer = Tracer(sample_rate=0.25, seed=5)
        hits = sum(tracer.sampled(i) for i in range(2000))
        assert 0.20 < hits / 2000 < 0.30

    def test_same_decision_across_instances(self):
        first = [Tracer(0.5, seed=9).sampled(i) for i in range(100)]
        second = [Tracer(0.5, seed=9).sampled(i) for i in range(100)]
        assert first == second

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestLifecycle:
    def test_begin_counts_every_request_but_traces_sampled_ones(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.begin(0, 0.0) is None
        assert tracer.requests_seen == 1
        assert tracer.traces == []

    def test_begin_opens_a_root_span(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin(3, 2.5)
        assert trace.trace_id == 3
        assert trace.root.kind == SpanKind.REQUEST
        assert trace.root.start_ms == 2.5

    def test_finalize_marks_open_traces_truncated(self):
        tracer = Tracer(sample_rate=1.0)
        in_flight = tracer.begin(0, 0.0)
        done = tracer.begin(1, 0.0)
        done.close(4.0, status="ok")
        tracer.finalize(10.0)
        assert in_flight.status == "truncated"
        assert in_flight.root.end_ms == 10.0
        assert done.status == "ok"
        assert tracer.completed_traces() == [done]

    def test_finalize_truncates_closed_trace_with_stranded_span(self):
        # A span left open past close() (a stranded attempt) taints the
        # whole trace: attribution must not see a partial decomposition.
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin(0, 0.0)
        stranded = trace.start(SpanKind.ATTEMPT, 1.0)
        trace.status = "ok"
        Trace.finish(trace.root, 5.0)
        assert stranded.end_ms is None
        tracer.finalize(9.0)
        assert trace.status == "truncated"
        assert stranded.end_ms == 9.0
        assert stranded.attrs["truncated"] is True


class TestRecordStage:
    def _trace(self):
        trace = Trace(0)
        root = trace.start(SpanKind.REQUEST, 0.0)
        return trace, root

    def test_back_to_back_stage_has_no_queue_span(self):
        trace, root = self._trace()
        span = record_stage(trace, root, 10.0, 13.0, SpanKind.CPU, 3.0)
        assert span.start_ms == 10.0 and span.end_ms == 13.0
        assert [s.kind for s in trace.spans] == [SpanKind.REQUEST, SpanKind.CPU]

    def test_gap_before_service_becomes_a_queue_span(self):
        trace, root = self._trace()
        record_stage(trace, root, 10.0, 18.0, SpanKind.DISK, 3.0)
        kinds = [s.kind for s in trace.spans]
        assert kinds == [SpanKind.REQUEST, SpanKind.QUEUE, SpanKind.DISK]
        queue = trace.spans[1]
        assert (queue.start_ms, queue.end_ms) == (10.0, 15.0)

    def test_service_longer_than_window_clamps_to_cursor(self):
        trace, root = self._trace()
        span = record_stage(trace, root, 10.0, 12.0, SpanKind.CPU, 5.0)
        assert span.start_ms == 10.0
        assert len(trace.spans) == 2  # no negative-length queue span

    def test_parts_served_back_to_back(self):
        trace, root = self._trace()
        parts = [
            (SpanKind.FLASH, "flash:hit", 1.0),
            (SpanKind.DISK, "disk:read", 4.0),
        ]
        record_stage_parts(trace, root, 0.0, 5.0, parts, total_ms=5.0)
        flash, disk = trace.spans[1], trace.spans[2]
        assert (flash.start_ms, flash.end_ms) == (0.0, 1.0)
        assert (disk.start_ms, disk.end_ms) == (1.0, 5.0)

    def test_zero_length_parts_are_skipped(self):
        trace, root = self._trace()
        parts = [(SpanKind.FLASH, "flash:hit", 2.0), (SpanKind.DISK, "disk", 0.0)]
        record_stage_parts(trace, root, 0.0, 2.0, parts, total_ms=2.0)
        assert [s.kind for s in trace.spans] == [SpanKind.REQUEST, SpanKind.FLASH]
