"""Exporters: deterministic JSONL, digests, Chrome trace-event schema."""

import json

from repro.obs import (
    SpanKind,
    Trace,
    chrome_trace,
    spans_jsonl,
    trace_digest,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)


def _sample_traces():
    trace = Trace(0)
    root = trace.start(SpanKind.REQUEST, 0.0)
    Trace.finish(trace.start(SpanKind.CPU, 0.0, parent=root), 3.0)
    trace.event(SpanKind.SHED, 3.0, reason="probe")
    trace.close(5.0)
    other = Trace(1)
    other.start(SpanKind.REQUEST, 1.0)
    other.close(2.0, status="gave_up")
    return [("groupA", [trace, other])]


class TestJsonl:
    def test_one_sorted_key_object_per_span(self):
        lines = spans_jsonl(_sample_traces()).splitlines()
        assert len(lines) == 4
        record = json.loads(lines[0])
        assert record["kind"] == "request"
        assert record["group"] == "groupA"
        assert list(record) == sorted(record)

    def test_byte_identical_across_builds(self):
        assert spans_jsonl(_sample_traces()) == spans_jsonl(_sample_traces())
        assert trace_digest(_sample_traces()) == trace_digest(_sample_traces())

    def test_digest_sees_every_field(self):
        groups = _sample_traces()
        base = trace_digest(groups)
        groups[0][1][0].spans[1].critical = False
        assert trace_digest(groups) != base

    def test_empty_groups_give_empty_log(self):
        assert spans_jsonl([("x", [])]) == ""

    def test_write_roundtrip(self, tmp_path):
        path = write_spans_jsonl(_sample_traces(), str(tmp_path / "spans.jsonl"))
        assert open(path).read() == spans_jsonl(_sample_traces())


class TestChromeTrace:
    def test_document_passes_its_own_validator(self):
        assert validate_chrome_trace(chrome_trace(_sample_traces())) == []

    def test_groups_become_processes_and_traces_threads(self):
        doc = chrome_trace(_sample_traces())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "groupA"
        thread_names = {e["args"]["name"] for e in meta[1:]}
        assert thread_names == {"request 0", "request 1"}

    def test_zero_duration_spans_become_instant_events(self):
        doc = chrome_trace(_sample_traces())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["cat"] == SpanKind.SHED for e in instants)

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(_sample_traces())
        cpu = next(e for e in doc["traceEvents"] if e.get("cat") == "cpu")
        assert cpu["dur"] == 3000.0

    def test_write_roundtrip_validates(self, tmp_path):
        path = write_chrome_trace(_sample_traces(), str(tmp_path / "t.json"))
        assert validate_chrome_trace(json.load(open(path))) == []


class TestValidator:
    def test_rejects_non_objects_and_missing_envelope(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing traceEvents array"]
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents is empty"
        ]

    def test_flags_missing_keys_and_bad_phases(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "n"},
                {"ph": "?", "name": "n"},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("missing 'ts'" in p for p in problems)
        assert any("unsupported phase" in p for p in problems)

    def test_flags_negative_timestamps(self):
        doc = chrome_trace(_sample_traces())
        doc["traceEvents"][2]["ts"] = -1.0
        assert any("ts" in p for p in validate_chrome_trace(doc))
