"""Critical-path attribution: exclusive times, tail aggregation, rendering."""

import pytest

from repro.obs import (
    OTHER,
    SpanKind,
    Trace,
    Tracer,
    attribute_critical_path,
    exclusive_times,
    format_attribution,
)
from repro.platforms import platform
from repro.simulator.server_sim import ServerSimulator, SimConfig
from repro.workloads import make_workload


def _closed_trace(trace_id, total_ms, cpu_ms, disk_ms):
    """request -> attempt -> [cpu, disk], with the remainder uncovered."""
    trace = Trace(trace_id)
    root = trace.start(SpanKind.REQUEST, 0.0)
    attempt = trace.start(SpanKind.ATTEMPT, 0.0, parent=root)
    Trace.finish(trace.start(SpanKind.CPU, 0.0, parent=attempt), cpu_ms)
    Trace.finish(
        trace.start(SpanKind.DISK, cpu_ms, parent=attempt), cpu_ms + disk_ms
    )
    Trace.finish(attempt, total_ms)
    trace.close(total_ms)
    return trace


class TestExclusiveTimes:
    def test_components_plus_other_sum_to_latency(self):
        trace = _closed_trace(0, total_ms=10.0, cpu_ms=4.0, disk_ms=3.0)
        times = exclusive_times(trace)
        assert times[SpanKind.CPU] == pytest.approx(4.0)
        assert times[SpanKind.DISK] == pytest.approx(3.0)
        # request and attempt cover nothing themselves -> "other" = 3.0.
        assert times[OTHER] == pytest.approx(3.0)
        assert sum(times.values()) == pytest.approx(trace.duration_ms)

    def test_non_critical_children_are_excluded(self):
        trace = Trace(0)
        root = trace.start(SpanKind.REQUEST, 0.0)
        loser = trace.start(SpanKind.ATTEMPT, 0.0, parent=root, critical=False)
        Trace.finish(trace.start(SpanKind.CPU, 0.0, parent=loser), 6.0)
        Trace.finish(loser, 6.0)
        winner = trace.start(SpanKind.ATTEMPT, 1.0, parent=root)
        Trace.finish(trace.start(SpanKind.CPU, 1.0, parent=winner), 8.0)
        Trace.finish(winner, 8.0)
        trace.close(8.0)
        times = exclusive_times(trace)
        # Only the winning attempt's 7ms of cpu counts, not the loser's 6.
        assert times[SpanKind.CPU] == pytest.approx(7.0)
        assert sum(times.values()) == pytest.approx(8.0)

    def test_empty_trace(self):
        assert exclusive_times(Trace(0)) == {}

    def test_sum_property_holds_on_a_real_traced_run(self):
        tracer = Tracer(sample_rate=1.0, seed=17)
        ServerSimulator(
            platform("srvr1"),
            make_workload("websearch"),
            config=SimConfig(warmup_requests=50, measure_requests=300),
            tracer=tracer,
        ).run()
        completed = tracer.completed_traces()
        assert len(completed) > 100
        for trace in completed:
            times = exclusive_times(trace)
            assert sum(times.values()) == pytest.approx(
                trace.duration_ms, rel=1e-9, abs=1e-6
            )


class TestAttribution:
    def _traces(self):
        return [
            _closed_trace(i, total_ms=10.0 + i, cpu_ms=4.0, disk_ms=3.0)
            for i in range(20)
        ]

    def test_percentile_rows_and_tail_sets(self):
        rows = attribute_critical_path(self._traces(), percentiles=(0.5, 0.95))
        p50, p95 = rows
        assert p50.trace_count > p95.trace_count >= 1
        assert p95.latency_ms >= p50.latency_ms
        for row in rows:
            assert sum(row.shares().values()) == pytest.approx(1.0)
            assert row.total_ms == pytest.approx(sum(row.components.values()))

    def test_truncated_and_open_traces_are_skipped(self):
        truncated = _closed_trace(99, 50.0, 4.0, 3.0)
        truncated.status = "truncated"
        open_trace = Trace(100)
        open_trace.start(SpanKind.REQUEST, 0.0)
        rows = attribute_critical_path(
            self._traces() + [truncated, open_trace], percentiles=(0.99,)
        )
        assert rows[0].latency_ms < 50.0

    def test_no_traces_gives_no_rows(self):
        assert attribute_critical_path([]) == []

    def test_invalid_percentile_raises(self):
        with pytest.raises(ValueError):
            attribute_critical_path(self._traces(), percentiles=(1.5,))


class TestFormatting:
    def test_table_lists_only_nonzero_components(self):
        text = format_attribution(attribute_critical_path(
            [_closed_trace(0, 10.0, 4.0, 3.0)]
        ))
        assert "cpu" in text and "disk" in text and "other" in text
        assert "flash" not in text

    def test_empty_input_renders_placeholder(self):
        assert format_attribution([]) == "(no complete traces)"
