"""Labeled metrics registry: identity, typing, lossless merge."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry
from repro.simulator.telemetry import LatencyHistogram, TimeSeries


class TestRegistration:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", outcome="served")
        second = registry.counter("requests", outcome="served")
        assert first is second

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", role="cpu", server="0")
        b = registry.counter("x", server="0", role="cpu")
        assert a is b

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        served = registry.counter("requests", outcome="served")
        shed = registry.counter("requests", outcome="shed")
        assert served is not shed
        assert len(registry) == 2

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(TypeError):
            registry.gauge("depth")

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)


class TestInspection:
    def test_value_reads_scalars_and_rejects_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(7.5)
        registry.histogram("h").record(3.0)
        assert registry.value("c") == 2.0
        assert registry.value("g") == 7.5
        assert registry.value("missing") is None
        with pytest.raises(TypeError):
            registry.value("h")

    def test_snapshot_covers_every_instrument_type(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").record(5.0)
        registry.series("s").record(100.0, 1.0)
        types = {entry["type"] for entry in registry.snapshot()}
        assert types == {"counter", "gauge", "histogram", "series"}

    def test_empty_histogram_snapshot_uses_none_not_crash(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        (entry,) = registry.snapshot()
        assert entry["count"] == 0
        assert entry["p99_ms"] is None

    def test_render_mentions_names_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("requests", outcome="served").inc(3)
        text = registry.render()
        assert "requests{outcome=served} 3" in text


class TestMerge:
    def test_counters_add_and_gauges_take_max(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        left.gauge("g").set(4.0)
        right.gauge("g").set(1.5)
        left.merge(right)
        assert left.value("c") == 5.0
        assert left.value("g") == 4.0

    def test_histograms_merge_losslessly(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        reference = LatencyHistogram()
        for value, target in ((5.0, left), (500.0, right), (50.0, right)):
            target.histogram("h").record(value)
            reference.record(value)
        left.merge(right)
        merged = left.get("h")
        assert merged.count == 3
        assert merged.percentile_ms(0.99) == reference.percentile_ms(0.99)

    def test_new_keys_are_deep_copied_not_aliased(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        right.counter("only-right").inc(1)
        left.merge(right)
        left.counter("only-right").inc(10)
        assert right.value("only-right") == 1.0

    def test_type_mismatch_raises(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("x")
        right.gauge("x")
        with pytest.raises(TypeError):
            left.merge(right)

    def test_series_config_mismatch_raises(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.series("s", bucket_ms=500.0).record(0.0, 1.0)
        right.series("s", bucket_ms=250.0).record(0.0, 1.0)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_returns_self_for_reduce_chaining(self):
        left = MetricsRegistry()
        assert left.merge(MetricsRegistry()) is left

    def test_instrument_classes_exported(self):
        assert isinstance(MetricsRegistry().counter("c"), Counter)
        assert isinstance(MetricsRegistry().gauge("g"), Gauge)
        assert isinstance(MetricsRegistry().series("s"), TimeSeries)
