"""Smoke tests of the ``repro-trace`` CLI."""

import json

import pytest

from repro.obs import cli


def _argv(chrome, jsonl):
    """A tiny healthy run with both export files written."""
    return [
        "srvr1",
        "--servers", "2", "--clients", "3",
        "--warmup", "20", "--measure", "80",
        "--no-faults", "--metrics", "--validate",
        "--chrome", str(chrome), "--jsonl", str(jsonl),
    ]


class TestCli:
    def test_run_reports_and_exports(self, tmp_path, capsys):
        chrome, jsonl = tmp_path / "trace.json", tmp_path / "spans.jsonl"
        assert cli.main(_argv(chrome, jsonl)) == 0
        out = capsys.readouterr().out
        assert "=== srvr1 ===" in out
        assert "digest=" in out
        assert "rps/server" in out
        assert "Chrome trace document is valid" in out
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]
        assert jsonl.read_text().count("\n") > 80

    def test_reruns_are_byte_identical(self, tmp_path, capsys):
        logs = []
        for name in ("first", "second"):
            jsonl = tmp_path / f"{name}.jsonl"
            assert cli.main(_argv(tmp_path / f"{name}.json", jsonl)) == 0
            logs.append(jsonl.read_bytes())
        capsys.readouterr()
        assert logs[0] == logs[1]

    def test_unknown_design_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["srvr9"])
        assert excinfo.value.code == 2
        assert "unknown design" in capsys.readouterr().err
