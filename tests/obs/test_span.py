"""Span/Trace model: tree construction, closing semantics, inspection."""

from repro.obs import Span, SpanKind, Trace


class TestSpan:
    def test_open_span_has_zero_duration(self):
        span = Span(0, None, SpanKind.CPU, "cpu", 10.0)
        assert span.end_ms is None
        assert span.duration_ms == 0.0

    def test_duration_after_finish(self):
        span = Span(0, None, SpanKind.CPU, "cpu", 10.0)
        Trace.finish(span, 13.5)
        assert span.duration_ms == 3.5

    def test_annotate_lazily_allocates(self):
        span = Span(0, None, SpanKind.DISK, "disk", 0.0)
        assert span.attrs is None
        span.annotate(cache="miss").annotate(bytes=4096)
        assert span.attrs == {"cache": "miss", "bytes": 4096}


class TestTrace:
    def test_first_span_is_root(self):
        trace = Trace(7)
        root = trace.start(SpanKind.REQUEST, 0.0)
        assert trace.root is root
        assert root.parent_id is None

    def test_parentless_spans_attach_to_root(self):
        trace = Trace(0)
        root = trace.start(SpanKind.REQUEST, 0.0)
        child = trace.start(SpanKind.CPU, 1.0)
        assert child.parent_id == root.span_id

    def test_explicit_parenting_and_children_of(self):
        trace = Trace(0)
        root = trace.start(SpanKind.REQUEST, 0.0)
        attempt = trace.start(SpanKind.ATTEMPT, 0.0, parent=root)
        cpu = trace.start(SpanKind.CPU, 0.0, parent=attempt)
        assert list(trace.children_of(attempt)) == [cpu]
        assert list(trace.children_of(root)) == [attempt]

    def test_span_ids_are_sequential_per_trace(self):
        trace = Trace(0)
        spans = [trace.start(SpanKind.CPU, float(i)) for i in range(4)]
        assert [s.span_id for s in spans] == [0, 1, 2, 3]

    def test_event_is_zero_duration_with_attrs(self):
        trace = Trace(0)
        trace.start(SpanKind.REQUEST, 0.0)
        event = trace.event(SpanKind.SHED, 5.0, reason="queue-full")
        assert event.start_ms == event.end_ms == 5.0
        assert event.attrs == {"reason": "queue-full"}

    def test_duration_is_root_duration(self):
        trace = Trace(0)
        trace.start(SpanKind.REQUEST, 2.0)
        trace.close(12.0)
        assert trace.duration_ms == 10.0
        assert Trace(1).duration_ms == 0.0

    def test_close_cuts_open_children_off_critical_path(self):
        trace = Trace(0)
        root = trace.start(SpanKind.REQUEST, 0.0)
        losing = trace.start(SpanKind.ATTEMPT, 1.0, parent=root)
        trace.close(9.0, status="ok")
        assert trace.status == "ok"
        assert root.end_ms == 9.0 and root.critical
        assert losing.end_ms == 9.0
        assert not losing.critical
        assert losing.attrs == {"cut_off": True}

    def test_close_is_idempotent(self):
        trace = Trace(0)
        trace.start(SpanKind.REQUEST, 0.0)
        trace.close(5.0, status="ok")
        trace.close(8.0, status="gave_up")
        assert trace.status == "ok"
        assert trace.root.end_ms == 5.0

    def test_complete_requires_closed_status_and_finished_spans(self):
        trace = Trace(0)
        trace.start(SpanKind.REQUEST, 0.0)
        assert not trace.complete
        trace.close(3.0)
        assert trace.complete
