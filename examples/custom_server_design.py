"""Design your own server: compose packaging, memory, and disk options.

The N1/N2 designs are just two points in the design space this library
exposes.  This example composes a third, "N1.5": desktop-class blades in
dual-entry enclosures with flash-cached remote disks but no memory
sharing, and evaluates it against srvr1, N1, and N2 on the full suite.

Run:  python examples/custom_server_design.py
"""

from repro.cooling import DUAL_ENTRY_ENCLOSURE
from repro.core.analysis import evaluate_designs
from repro.core.designs import UnifiedDesign, baseline_design, n1_design, n2_design
from repro.flashcache import disk_configuration
from repro.workloads import benchmark_names


def make_n15() -> UnifiedDesign:
    """Desktop blades + dual-entry cooling + flash-cached SAN disks."""
    return UnifiedDesign(
        name="N1.5",
        platform_name="desk",
        enclosure=DUAL_ENTRY_ENCLOSURE,
        memory_scheme=None,
        disk_config=disk_configuration("remote-laptop+flash"),
        description="desktop blades, dual-entry enclosure, flash-cached SAN",
    )


def main() -> None:
    designs = [baseline_design("srvr1"), n1_design(), make_n15(), n2_design()]
    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method="sim"
    )

    print("Custom design study (all values relative to srvr1)\n")
    for metric in ("Perf/Inf-$", "Perf/W", "Perf/TCO-$"):
        print(evaluation.table(metric).render())
        print()

    tco = evaluation.table("Perf/TCO-$")
    ranked = sorted(evaluation.designs, key=tco.hmean, reverse=True)
    print("Perf/TCO-$ ranking (harmonic mean):")
    for name in ranked:
        print(f"  {name:<6} {tco.hmean(name) * 100:6.0f}%")


if __name__ == "__main__":
    main()
