"""Datacenter planning: size a fleet for a target aggregate throughput.

The warehouse-computing question the paper motivates: given a service
that must sustain N requests/second in aggregate, which building block
(srvr1 / desk / emb1 / the unified N2 design) minimizes total cost of
ownership, power, and rack count?

The fleet model follows the paper's scale-out assumption: cluster
throughput is the aggregation of single-server throughputs (section 4
discusses the Amdahl's-law caveat).

Run:  python examples/datacenter_planning.py
"""

import math

from repro.core.designs import baseline_design, n2_design
from repro.simulator import measure_performance
from repro.workloads import make_workload

#: Target aggregate websearch load for the service, requests/second.
TARGET_RPS = 50_000.0


def plan(design, bench: str = "websearch"):
    """Fleet size, cost, power, and racks for one building block."""
    workload = make_workload(bench)
    perf = measure_performance(
        design.platform,
        workload,
        disk_model=design.disk_model_for(bench),
        memory_slowdown=design.memory_slowdown,
    )
    servers = math.ceil(TARGET_RPS / perf.throughput_rps)
    breakdown = design.tco_breakdown()
    rack = design.rack()
    racks = math.ceil(servers / rack.servers_per_rack)
    return {
        "design": design.name,
        "per_server_rps": perf.throughput_rps,
        "servers": servers,
        "racks": racks,
        "fleet_tco_usd": servers * breakdown.total_usd,
        "fleet_power_kw": servers * breakdown.consumed_power_w / 1000.0,
    }


def main() -> None:
    designs = [
        baseline_design("srvr1"),
        baseline_design("desk"),
        baseline_design("emb1"),
        n2_design(),
    ]
    print(f"Fleet plan for {TARGET_RPS:,.0f} websearch req/s aggregate\n")
    header = (f"{'design':<8} {'req/s/srv':>10} {'servers':>9} {'racks':>7} "
              f"{'fleet TCO':>14} {'power':>9}")
    print(header)
    print("-" * len(header))
    plans = [plan(d) for d in designs]
    for p in plans:
        print(
            f"{p['design']:<8} {p['per_server_rps']:>10.1f} {p['servers']:>9,} "
            f"{p['racks']:>7,} ${p['fleet_tco_usd']:>12,.0f} "
            f"{p['fleet_power_kw']:>7.1f}kW"
        )

    best = min(plans, key=lambda p: p["fleet_tco_usd"])
    baseline = next(p for p in plans if p["design"] == "srvr1")
    saving = 1.0 - best["fleet_tco_usd"] / baseline["fleet_tco_usd"]
    print(
        f"\nCheapest fleet: {best['design']} "
        f"({saving:.0%} lower TCO than srvr1 for the same throughput)"
    )


if __name__ == "__main__":
    main()
