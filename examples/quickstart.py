"""Quickstart: score one server on one benchmark, the paper's way.

Builds the Table 2 ``emb1`` embedded platform, runs the websearch
benchmark through the discrete-event simulator with the adaptive
QoS-constrained client driver, prices the server with the burdened
TCO model, and prints all four paper metrics.

Run:  python examples/quickstart.py
"""

from repro.costmodel import SERVER_BILLS, TcoModel, PowerModel
from repro.core.metrics import EfficiencyMetrics
from repro.platforms import platform
from repro.simulator import measure_performance
from repro.workloads import make_workload


def main() -> None:
    system = "emb1"
    bench = "websearch"

    # 1. Performance: max requests/second under the paper's QoS
    #    (>95% of queries within 0.5 s), found by the adaptive driver.
    plat = platform(system)
    workload = make_workload(bench)
    perf = measure_performance(plat, workload)
    print(f"{system} running {bench}:")
    print(f"  sustained throughput : {perf.throughput_rps:8.1f} req/s "
          f"(QoS {'met' if perf.qos_met else 'VIOLATED'})")

    # 2. Cost: hardware + burdened 3-year power & cooling.
    tco = TcoModel().breakdown(SERVER_BILLS[system])
    print(f"  hardware (infra)     : ${tco.hardware_total_usd:8,.0f}")
    print(f"  3-yr power & cooling : ${tco.power_cooling_total_usd:8,.0f}")
    print(f"  total (TCO)          : ${tco.total_usd:8,.0f}")

    # 3. The paper's efficiency metrics.
    metrics = EfficiencyMetrics(
        system=system,
        benchmark=bench,
        performance=perf.score,
        power_w=PowerModel().server_consumed_w(SERVER_BILLS[system]),
        infrastructure_usd=tco.hardware_total_usd,
        power_cooling_usd=tco.power_cooling_total_usd,
    )
    print(f"  Perf/W               : {metrics.perf_per_watt:8.3f} req/s/W")
    print(f"  Perf/Inf-$           : {metrics.perf_per_inf_usd:8.4f} req/s/$")
    print(f"  Perf/TCO-$           : {metrics.perf_per_tco_usd:8.4f} req/s/$")


if __name__ == "__main__":
    main()
