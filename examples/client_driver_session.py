"""Drive a server the way the paper's client driver does.

Shows the adaptive control loop explicitly: the driver explores client
populations, watching the p95 latency against the QoS budget, and settles
on the highest throughput that doesn't overload the server -- then prints
the whole exploration trace.

Run:  python examples/client_driver_session.py
"""

from repro.platforms import platform
from repro.workloads import make_workload
from repro.workloads.client import ClientDriver


def main() -> None:
    workload = make_workload("websearch")
    driver = ClientDriver(platform("srvr2"), workload)
    report = driver.run()

    print(report.describe())
    print(f"\nQoS target: {workload.profile.qos.describe()}\n")
    print(f"{'clients':>8} {'rate (req/s)':>13} {'p95 (ms)':>9} {'QoS':>5}")
    for point in report.explored:
        marker = " <-- chosen" if point.clients == report.clients else ""
        print(f"{point.clients:>8} {point.transaction_rate_rps:>13.1f} "
              f"{point.qos_percentile_ms:>9.0f} "
              f"{'ok' if point.qos_met else 'VIOL':>5}{marker}")

    print("\nThe driver grows the population while QoS holds, then "
          "binary-searches the boundary -- exactly the paper's described "
          "'highest level of throughput without overloading the servers'.")


if __name__ == "__main__":
    main()
