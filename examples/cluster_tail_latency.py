"""Cluster tail latency: does the aggregation assumption hold?

The paper scores single servers and assumes cluster performance is the
sum of the parts (section 4).  This example runs actual multi-server
clusters behind a load balancer and reports, per cluster size and
dispatch policy, the aggregate throughput (relative to n x single-server)
and the cluster-level p95 latency -- the quantity the QoS guarantee is
really about in production.

Run:  python examples/cluster_tail_latency.py
"""

from repro.cluster import ClusterSimulator, Dispatch
from repro.platforms import platform
from repro.simulator import measure_performance
from repro.workloads import make_workload

SYSTEM = "desk"
BENCH = "websearch"


def main() -> None:
    plat = platform(SYSTEM)
    workload = make_workload(BENCH)
    single = measure_performance(plat, workload)
    print(f"single {SYSTEM} on {BENCH}: {single.throughput_rps:.1f} req/s "
          f"at p95 <= {workload.profile.qos.limit_ms:.0f} ms\n")
    # Drive each cluster at the single server's peak concurrency per node.
    clients = max(2, int(
        single.throughput_rps * workload.profile.think_time_ms / 1000.0
    ) + 4)

    header = (f"{'servers':>8} {'dispatch':>18} {'agg. rps':>10} "
              f"{'vs n x single':>14} {'p95':>9} {'QoS':>5}")
    print(header)
    print("-" * len(header))
    for servers in (2, 4, 8, 16):
        for dispatch in (Dispatch.ROUND_ROBIN, Dispatch.LEAST_OUTSTANDING):
            result = ClusterSimulator(
                plat, workload, servers=servers,
                clients_per_server=clients, dispatch=dispatch,
                measure_requests=3000,
            ).run()
            ratio = result.throughput_rps / (servers * single.throughput_rps)
            print(f"{servers:>8} {str(dispatch):>18} "
                  f"{result.throughput_rps:>10.1f} {ratio:>13.0%} "
                  f"{result.qos_percentile_ms:>7.0f}ms "
                  f"{'ok' if result.qos_met else 'VIOL':>5}")

    print("\nAggregation holds within a few percent at every size, "
          "supporting the paper's methodology; least-outstanding dispatch "
          "consistently trims the cluster-level tail.")


if __name__ == "__main__":
    main()
