"""Trace requests through a faulted cluster and read the bill.

The scalar cluster results say *how slow* the tail is; the tracing layer
(`repro.obs`) says *where the milliseconds went*.  This example runs a
small N2 cluster (remote-memory blade + flash cache) under accelerated
fault injection with every request traced, then:

1. prints the p50/p95/p99 critical-path attribution table -- each row
   charges 100% of the tail's latency to queue/cpu/mem/remote_mem/
   flash/disk/net/retry/other;
2. prints the labeled metrics the instrumented components recorded;
3. dumps one slow request's span tree, indented, so the structure --
   attempts, hedges, queue gaps, typed service spans -- is visible;
4. writes `trace_request.chrome.json`, loadable in Perfetto
   (https://ui.perfetto.dev) or chrome://tracing for the full timeline.

Tracing consumes no RNG state and adds no simulated events: rerun this
with `TRACED = False` and the printed cluster numbers do not change.

Run:  python examples/trace_request.py
"""

from repro.cluster import ClusterSimulator
from repro.experiments.availability import (
    RETRY_POLICY,
    STRESS_FAULT_PROFILE,
)
from repro.flashcache.analysis import disk_configuration
from repro.memsim.remote_memory import make_remote_memory_model
from repro.obs import (
    MetricsRegistry,
    Tracer,
    attribute_critical_path,
    format_attribution,
    write_chrome_trace,
)
from repro.platforms import platform
from repro.workloads import make_workload

BENCH = "websearch"
CHROME_OUT = "trace_request.chrome.json"


def print_span_tree(trace) -> None:
    """One request's spans, indented by parent/child depth."""
    by_parent = {}
    for span in trace.spans:
        by_parent.setdefault(span.parent_id, []).append(span)

    def walk(span, depth):
        flag = "" if span.critical else "  [off critical path]"
        print(
            f"  {'  ' * depth}{span.kind}:{span.name}  "
            f"{span.start_ms:.1f} -> {span.end_ms:.1f} ms "
            f"({span.duration_ms:.2f} ms){flag}"
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    walk(trace.root, 0)


def main() -> None:
    config = disk_configuration("remote-laptop+flash")
    tracer = Tracer(sample_rate=1.0, seed=17)
    metrics = MetricsRegistry()
    result = ClusterSimulator(
        platform("srvr1"),
        make_workload(BENCH),
        servers=4,
        clients_per_server=5,
        seed=1,
        warmup_requests=100,
        measure_requests=900,
        remote_memory=make_remote_memory_model(
            BENCH, local_fraction=0.25, trace_length=100_000
        ),
        disk_model_factory=lambda: config.make_disk_model(BENCH),
        faults=STRESS_FAULT_PROFILE,
        fault_seed=7,
        retry=RETRY_POLICY,
        enclosure_size=4,
        tracer=tracer,
        metrics=metrics,
    ).run()

    completed = tracer.completed_traces()
    print(
        f"cluster: {result.per_server_rps:.1f} rps/server, "
        f"p95 {result.qos_percentile_ms:.0f} ms, p99 {result.p99_ms:.0f} ms; "
        f"{len(completed)} of {len(tracer.traces)} traces completed\n"
    )

    print("critical-path attribution (rows sum to 100%):")
    print(format_attribution(attribute_critical_path(completed)))

    print("\nlabeled metrics:")
    print(metrics.render())

    slowest = max(completed, key=lambda t: t.duration_ms)
    print(
        f"\nslowest request (trace {slowest.trace_id}, "
        f"{slowest.duration_ms:.1f} ms end to end):"
    )
    print_span_tree(slowest)

    write_chrome_trace([("n2-faulted", tracer.traces)], CHROME_OUT)
    print(f"\nwrote {CHROME_OUT} -- open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
