"""The paper's argument, end to end, in one script.

Walks the paper's narrative with live numbers from this library:

  section 2   the cost model (where the money goes),
  section 3.2 low-power CPUs (the performance/TCO trade),
  section 3.3 packaging and cooling,
  section 3.4 memory sharing,
  section 3.5 flash disk caches,
  section 3.6 the unified designs N1 and N2.

Uses the fast analytic performance model so the whole story prints in a
few seconds; swap ``METHOD = "sim"`` for the full discrete-event runs.

Run:  python examples/paper_walkthrough.py
"""

from repro.cooling import (
    AGGREGATED_MICROBLADE,
    CONVENTIONAL_ENCLOSURE,
    DUAL_ENTRY_ENCLOSURE,
)
from repro.core import baseline_design, evaluate_designs, n1_design, n2_design
from repro.costmodel import SERVER_BILLS, TcoModel
from repro.experiments.figure4 import provisioning_efficiencies
from repro.flashcache import FlashCachedDiskModel, RemoteSanDiskModel
from repro.memsim import PCIE_X4_PAGE_LATENCY_US, TwoLevelMemorySimulator, WORKLOAD_TRACES
from repro.platforms import LAPTOP_DISK
from repro.workloads import benchmark_names

METHOD = "analytic"


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("2. Where the money goes")
    tco = TcoModel()
    for system in ("srvr1", "srvr2"):
        b = tco.breakdown(SERVER_BILLS[system])
        print(f"  {system}: hardware ${b.hardware_total_usd:,.0f} + "
              f"3-yr P&C ${b.power_cooling_total_usd:,.0f} = "
              f"${b.total_usd:,.0f}")
    print("  -> power & cooling rivals hardware; CPU is the biggest slice "
          "of both.  No single component dominates: go holistic.")

    section("3.2 Low-power CPUs from non-server markets")
    designs = [baseline_design(n) for n in
               ("srvr1", "srvr2", "desk", "mobl", "emb1", "emb2")]
    evaluation = evaluate_designs(
        designs, benchmark_names(), baseline="srvr1", method=METHOD
    )
    table = evaluation.table("Perf/TCO-$")
    for system in ("desk", "emb1", "emb2"):
        print(f"  {system}: Perf/TCO-$ HMean {table.hmean(system) * 100:.0f}% "
              f"of srvr1")
    print("  -> desktops validate current practice; the right embedded "
          "platform does better; the wrong one (emb2) does not.")

    section("3.3 Packaging and cooling")
    for enclosure in (DUAL_ENTRY_ENCLOSURE, AGGREGATED_MICROBLADE):
        gain = enclosure.cooling_efficiency_vs(CONVENTIONAL_ENCLOSURE)
        print(f"  {enclosure.name}: {gain:.1f}x cooling efficiency, "
              f"{enclosure.systems_per_rack} systems/rack")

    section("3.4 Memory sharing")
    spec = WORKLOAD_TRACES["websearch"]
    sim = TwoLevelMemorySimulator(spec, 0.25, policy="random")
    slowdown = sim.slowdown(PCIE_X4_PAGE_LATENCY_US, 200_000)
    print(f"  websearch at 25% local memory: {slowdown:.1%} slowdown "
          f"over PCIe -- tolerable, so 75% of DRAM can move to cheap, "
          f"powered-down blades.")
    prov = provisioning_efficiencies()
    print(f"  dynamic provisioning: Perf/TCO-$ "
          f"{prov['dynamic']['perf_per_tco'] * 100:.0f}% of baseline.")

    section("3.5 Flash disk caches")
    model = FlashCachedDiskModel(RemoteSanDiskModel(LAPTOP_DISK), "websearch")
    print(f"  1 GB flash in front of a SAN laptop disk: expected hit rate "
          f"{model.expected_hit_rate():.0%}; recovers the laptop disk's "
          f"performance loss at $14 and 0.5 W.")

    section("3.6 Putting it all together")
    unified = evaluate_designs(
        [baseline_design("srvr1"), n1_design(), n2_design()],
        benchmark_names(),
        baseline="srvr1",
        method=METHOD,
    )
    tco_table = unified.table("Perf/TCO-$")
    for name in ("N1", "N2"):
        print(f"  {name}: Perf/TCO-$ HMean {tco_table.hmean(name) * 100:.0f}% "
              f"of srvr1 (ytube {tco_table.value('ytube', name) * 100:.0f}%, "
              f"webmail {tco_table.value('webmail', name) * 100:.0f}%)")
    print("  -> multi-x wins on the IO-bound workloads -- the paper's "
          "headline pattern.")
    if METHOD == "analytic":
        print("  (analytic model: no QoS constraint, so ratios run above "
              "the DES results in EXPERIMENTS.md -- N1 1.55x / N2 1.83x.)")


if __name__ == "__main__":
    main()
