"""Memory-blade sizing: how much local memory does a workload need?

Sweeps the local-memory fraction for each benchmark's page-access trace
(paper section 3.4's experiment, generalized to a full sweep), reporting
the remote-miss rate and the execution-time slowdown for both the PCIe x4
page transfer and the critical-block-first (CBF) optimization.  The
"knee" of the curve tells an operator how small the local DRAM can go
before remote paging starts to hurt.

Run:  python examples/memory_blade_sizing.py
"""

from repro.memsim import (
    CBF_PAGE_LATENCY_US,
    PCIE_X4_PAGE_LATENCY_US,
    TwoLevelMemorySimulator,
    WORKLOAD_TRACES,
)

LOCAL_FRACTIONS = (0.0625, 0.125, 0.25, 0.5)
#: Shorter traces keep the example quick; see tests for full-length runs.
TRACE_LENGTH = 200_000


def main() -> None:
    for name, spec in WORKLOAD_TRACES.items():
        print(f"\n{name} (footprint {spec.footprint_pages * 4 // 1024} MB, "
              f"{spec.touches_per_ms:.0f} page-touches/ms)")
        print(f"  {'local':>7} {'miss rate':>10} {'PCIe 4us':>10} {'CBF 0.75us':>11}")
        knee = None
        for fraction in LOCAL_FRACTIONS:
            sim = TwoLevelMemorySimulator(spec, fraction, policy="random")
            stats = sim.run(TRACE_LENGTH)
            pcie = sim.spec.touches_per_ms * stats.miss_rate * (
                PCIE_X4_PAGE_LATENCY_US / 1000.0
            )
            cbf = sim.spec.touches_per_ms * stats.miss_rate * (
                CBF_PAGE_LATENCY_US / 1000.0
            )
            print(f"  {fraction:>6.1%} {stats.miss_rate:>10.1%} "
                  f"{pcie:>10.2%} {cbf:>11.2%}")
            if knee is None and pcie < 0.02:
                knee = fraction
        if knee is not None:
            print(f"  -> {knee:.1%} local memory keeps the PCIe slowdown "
                  f"under 2% (the paper's planning threshold)")
        else:
            print("  -> needs more than 50% local memory for <2% slowdown")


if __name__ == "__main__":
    main()
