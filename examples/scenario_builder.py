"""Build, serialize, and run a scenario with the fluent builder.

A scenario is *data*: the builder assembles a frozen, validated spec
(topology, workload, traffic program, overlays), which round-trips
through YAML and compiles onto the repository's cluster engines -- the
compiler picks the fastest eligible one (the vectorized cohort engine
when the configuration qualifies, the scalar DES otherwise) and reports
which it used and why.

This example declares a two-step request DAG (a lookup fanning into a
render step) served by a small N1 tier, drives it with an open-loop
surge under the overload-protection stack, prints the compiled plan,
runs it, and shows the YAML the spec serializes to.

Run:  python examples/scenario_builder.py
"""

from repro.scenario import (
    OverloadSpec,
    RetrySpec,
    ScenarioBuilder,
    compile_scenario,
    scenario_to_dict,
)

WARMUP_MS = 1000.0
MEASURE_MS = 6000.0


def build_scenario():
    return (
        ScenarioBuilder("dag-surge-demo")
        .describe("two-step request DAG under a 4x surge, protected")
        .seed(5)
        .tier("web", design="N1", servers=4)
        .request_dag("lookup-render", qos_limit_ms=400.0)
        .step("lookup", cpu_ms_ref=1.5, mem_ms_ref=0.4, net_bytes=2_000)
        .step("render", cpu_ms_ref=2.5, mem_ms_ref=0.8, net_bytes=12_000,
              after=["lookup"])
        .open_loop(utilization=0.6, warmup_ms=WARMUP_MS,
                   measure_ms=MEASURE_MS)
        .surge(multiplier=4.0, start_ms=2000.0, end_ms=3500.0)
        .overlay("protected",
                 retry=RetrySpec(jitter=True),
                 overload=OverloadSpec(queue_cap="auto"))
        .build()
    )


def main() -> None:
    scenario = build_scenario()

    compiled = compile_scenario(scenario)
    print(compiled.describe())
    print()

    result = compiled.execute()
    print(result.render())
    print()

    import json

    print("serialized spec (YAML-equivalent dict):")
    print(json.dumps(scenario_to_dict(scenario), indent=2))


if __name__ == "__main__":
    main()
