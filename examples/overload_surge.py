"""Metastable overload: a traffic surge with and without protection.

A cluster provisioned near the paper's utilization target is hit by a
5x traffic surge.  With the repository's plain timeout-and-retry stack
over unbounded queues, the surge is *metastable*: queues outgrow the
client timeout, servers burn capacity on requests whose clients already
gave up, and synchronized retries hold the cluster at saturation long
after the offered load returns to normal.  With the
``repro.cluster.overload`` protection stack (bounded queues, deadline
shedding, admission control, retry budgets, circuit breakers, brownout,
jittered backoff), goodput dips during the surge and snaps back within
seconds of it ending.

Run:  python examples/overload_surge.py
"""

from repro.cluster import ClusterSimulator, OverloadPolicy, RetryPolicy, SurgeSchedule
from repro.platforms import platform
from repro.simulator import measure_performance
from repro.workloads import make_workload

SYSTEM = "desk"
BENCH = "websearch"
SERVERS = 2
WARMUP_MS = 1000.0
SURGE_START_MS = 4000.0
SURGE_END_MS = 8000.0
MEASURE_MS = 15_000.0


def timeline(series, end_ms: float, peak_rps: float, width: int = 24) -> str:
    """Render a per-second goodput bar chart from a TimeSeries."""
    lines = []
    for second in range(int(end_ms // 1000)):
        rate = series.window_mean_rate_per_s(second * 1000.0, (second + 1) * 1000.0)
        bar = "#" * int(round(width * min(rate / peak_rps, 1.0) if peak_rps else 0))
        in_surge = SURGE_START_MS <= second * 1000.0 < SURGE_END_MS
        tag = " <- surge" if in_surge else ""
        lines.append(f"    {second:>3}s |{bar:<{width}}| {rate:>6.0f} r/s{tag}")
    return "\n".join(lines)


def main() -> None:
    plat = platform(SYSTEM)
    workload = make_workload(BENCH)
    capacity = measure_performance(plat, workload, method="analytic").throughput_rps
    base_rate = 0.6 * capacity * SERVERS
    schedule = SurgeSchedule(
        base_rate_rps=base_rate,
        surge_multiplier=5.0,
        surge_start_ms=SURGE_START_MS,
        surge_end_ms=SURGE_END_MS,
    )
    print(f"{SERVERS}x {SYSTEM} on {BENCH}: capacity {capacity:.0f} r/s per "
          f"server, offered {base_rate:.0f} r/s with a 5x surge in "
          f"[{SURGE_START_MS / 1000:.0f}s, {SURGE_END_MS / 1000:.0f}s)\n")

    queue_cap = max(4, int(capacity * RetryPolicy().timeout_ms / 1000.0 * 0.5))
    stacks = {
        "naive (unbounded queues, plain retries)": (
            RetryPolicy(), OverloadPolicy.unprotected(),
        ),
        "protected (bounded queues + admission + budgets + breakers)": (
            RetryPolicy(jitter=True), OverloadPolicy(queue_cap=queue_cap),
        ),
    }
    end_ms = WARMUP_MS + MEASURE_MS
    for label, (retry, policy) in stacks.items():
        result = ClusterSimulator(
            plat, workload, servers=SERVERS, clients_per_server=1,
            retry=retry, overload=policy, arrivals=schedule,
            warmup_ms=WARMUP_MS, measure_ms=MEASURE_MS, seed=3,
        ).run()
        report = result.overload_report
        pre = report.goodput.window_mean_rate_per_s(WARMUP_MS, SURGE_START_MS)
        post = report.goodput.window_mean_rate_per_s(SURGE_END_MS + 2000.0, end_ms)
        print(f"{label}:")
        print(timeline(report.goodput, end_ms, peak_rps=base_rate))
        print(f"    goodput {result.goodput_rps:.0f} r/s of "
              f"{result.offered_rps:.0f} offered, p99 {result.p99_ms:.0f} ms; "
              f"pre-surge {pre:.0f} -> post-surge {post:.0f} r/s")
        print(f"    shed {report.total_shed}, queue rejects "
              f"{report.rejected_queue_full}, retries denied "
              f"{report.retries_denied}, breaker opens {report.breaker_opens}, "
              f"brownout {report.brownout_requests}\n")

    print("The naive stack never recovers after the surge (metastable "
          "collapse); the protected stack sheds during the surge and "
          "returns to the pre-surge baseline within seconds.")


if __name__ == "__main__":
    main()
