"""Ensemble memory provisioning: why the memory blade exists.

Section 3.4's motivation, demonstrated with a stochastic demand model:
per-server peak sizing buys DRAM for simultaneous peaks that never
happen.  Sweeps the blade pool size and overflow tolerance, then checks
the paper's dynamic-provisioning assumption (total memory at 85% of the
per-server-peak baseline) against the model.

Run:  python examples/ensemble_memory_provisioning.py
"""

from repro.memsim.ensemble import MemoryDemandModel, ProvisioningStudy
from repro.memsim.sharing import (
    CompressionModel,
    PageSharingModel,
    effective_capacity_factor,
)

DEMAND = MemoryDemandModel(mean_gb=2.2, stddev_gb=0.8, peak_gb=4.0)


def main() -> None:
    print("Per-server demand: mean 2.2 GB, sd 0.8 GB, peak 4 GB "
          "(AR(1), mean-reverting)\n")

    print(f"{'servers':>8} {'per-server peak':>16} {'ensemble (1% ovfl)':>19} "
          f"{'saved':>7}")
    for servers in (8, 16, 32, 64, 128):
        study = ProvisioningStudy(DEMAND, servers=servers, seed=13)
        per_server = study.per_server_provisioned_gb()
        ensemble = study.ensemble_provisioned_gb(overflow_tolerance=0.01)
        print(f"{servers:>8} {per_server:>14.0f}GB {ensemble:>17.0f}GB "
              f"{study.savings(0.01):>7.0%}")

    study = ProvisioningStudy(DEMAND, servers=32, seed=13)
    print("\nOverflow-tolerance sweep (32 servers):")
    for tolerance in (0.10, 0.01, 0.001):
        gb = study.ensemble_provisioned_gb(tolerance)
        print(f"  tolerance {tolerance:>6.1%}: {gb:6.0f} GB "
              f"({1 - gb / study.per_server_provisioned_gb():.0%} saved)")

    paper_fraction = 0.85
    measured = study.ensemble_provisioned_gb(0.01) / study.per_server_provisioned_gb()
    print(f"\nPaper's dynamic-provisioning assumption: total memory at "
          f"{paper_fraction:.0%} of baseline.")
    print(f"Stochastic model requires {measured:.0%} -- the paper's "
          f"assumption is {'conservative' if measured < paper_fraction else 'optimistic'}.")

    # Section 3.4's further optimizations compound the savings.
    factor = effective_capacity_factor(
        PageSharingModel(servers=8), CompressionModel()
    )
    print(f"\nWith content-based sharing + MXT-style compression the blade "
          f"stores {factor:.1f}x its physical capacity, stretching the "
          f"savings further.")


if __name__ == "__main__":
    main()
