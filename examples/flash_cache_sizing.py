"""Flash-cache sizing: sweep flash capacity for each benchmark.

Extends the paper's section 3.5 single-point (1 GB) study into a design
sweep: for each benchmark's disk-object popularity model, how does the
flash hit rate -- and the resulting mean disk service time on the remote
laptop-disk SAN -- change with flash capacity?  Also reports the
wear-leveled flash lifetime at the observed insert rate, addressing the
paper's endurance concern.

Run:  python examples/flash_cache_sizing.py
"""

import random
from dataclasses import replace

from repro.flashcache import FlashCachedDiskModel, RemoteSanDiskModel
from repro.platforms import FLASH_1GB, LAPTOP_DISK
from repro.workloads import make_workload

CAPACITIES_GB = (0.5, 1.0, 2.0, 4.0)
WARMUP_REQUESTS = 15_000
REQUESTS = 15_000


def sweep(bench: str) -> None:
    workload = make_workload(bench)
    demand = workload.mean_demand()
    print(f"\n{bench}:")
    print(f"  {'flash':>7} {'hit rate':>9} {'mean disk ms':>13} "
          f"{'vs no flash':>12} {'lifetime':>10}")
    backing = RemoteSanDiskModel(LAPTOP_DISK)
    no_flash_ms = backing.mean_service_ms(demand)
    for capacity in CAPACITIES_GB:
        device = replace(FLASH_1GB, capacity_gb=capacity,
                         price_usd=FLASH_1GB.price_usd * capacity)
        model = FlashCachedDiskModel(
            RemoteSanDiskModel(LAPTOP_DISK), bench, flash_device=device
        )
        rng = random.Random(42)
        for _ in range(WARMUP_REQUESTS):  # populate the cache first
            model.service_ms(workload.sample(rng).demand, rng)
        warm_hits = model.cache.stats.hits
        warm_lookups = model.cache.stats.lookups
        warm_inserts = model.cache.stats.insertions
        total_ms = 0.0
        for _ in range(REQUESTS):
            total_ms += model.service_ms(workload.sample(rng).demand, rng)
        mean_ms = total_ms / REQUESTS
        lookups = model.cache.stats.lookups - warm_lookups
        hit_rate = (model.cache.stats.hits - warm_hits) / max(lookups, 1)
        inserts = model.cache.stats.insertions - warm_inserts
        # Wear at a nominal 20 req/s per server (roughly emb1's measured
        # throughput on these benchmarks).
        inserts_per_s = (inserts / REQUESTS) * 20.0
        lifetime = model.cache.estimated_lifetime_years(inserts_per_s)
        lifetime_str = "inf" if lifetime == float("inf") else f"{lifetime:7.1f}y"
        print(f"  {capacity:>5.1f}GB {hit_rate:>9.1%} "
              f"{mean_ms:>13.2f} {mean_ms / no_flash_ms:>11.0%} {lifetime_str:>10}")


def main() -> None:
    print(f"Remote laptop-disk SAN, no flash baseline service times shown "
          f"as 100%")
    for bench in ("websearch", "webmail", "ytube", "mapred-wc"):
        sweep(bench)
    print("\nNote: mapred-wc's scan-like access pattern caps the achievable")
    print("hit rate -- flash disk caches pay off most for user-facing,")
    print("popularity-skewed traffic, exactly the paper's target workloads.")


if __name__ == "__main__":
    main()
